package obs

// Prometheus text exposition (format 0.0.4) for a registry snapshot, plus
// a promtool-style linter used by the tests and cmd/tracelint so the
// /metrics contract is checked without importing the Prometheus client.
//
// Mapping: counters and gauges export one sample each; cumulative
// histograms export the classic _bucket{le=...}/_sum/_count triplet with
// cumulative bucket counts; rolling (sliding-window) histograms export as
// summaries with quantile labels — their values can go down as samples
// age out, which the summary type permits and the histogram type does
// not.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromName sanitizes an internal metric name into a legal Prometheus
// metric name ([a-zA-Z_:][a-zA-Z0-9_:]*).
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
		default:
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, metrics sorted by name so output is diff-stable.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := PromName(n)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[n]))
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writePromHistogram(bw, PromName(n), s.Histograms[n])
	}

	names = names[:0]
	for n := range s.Rolling {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		writePromSummary(bw, PromName(n), s.Rolling[n])
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, pn string, h HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum uint64
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
}

var summaryQuantiles = []float64{0.5, 0.9, 0.99}

func writePromSummary(w io.Writer, pn string, h HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s summary\n", pn)
	for _, q := range summaryQuantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", pn, promFloat(q), promFloat(h.Quantile(q)))
	}
	fmt.Fprintf(w, "%s_sum %s\n", pn, promFloat(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
}

// LintPrometheus checks a text-exposition payload the way promtool's
// `check metrics` does at the syntax level, returning a list of problems
// (empty means the payload is clean):
//
//   - every sample line parses as name[{labels}] value [timestamp];
//   - metric and label names are legal; label values are quoted with
//     closed quotes; sample values parse as Go floats (+Inf/-Inf/NaN ok);
//   - # TYPE lines name a known type and precede the samples they type;
//     a metric is TYPEd at most once;
//   - histogram buckets carry an le label, are cumulative
//     (non-decreasing in le order), include an le="+Inf" bucket, and the
//     +Inf bucket equals the _count sample;
//   - counter sample values are non-negative.
func LintPrometheus(data []byte) []string {
	var problems []string
	types := map[string]string{}
	sampleSeen := map[string]bool{}
	// histogram accounting: base name -> buckets / count
	type histState struct {
		buckets map[float64]float64
		count   float64
		hasCnt  bool
	}
	hists := map[string]*histState{}

	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line: %q", lineNo, line))
					continue
				}
				name, typ := fields[2], fields[3]
				if !validPromName(name) {
					problems = append(problems, fmt.Sprintf("line %d: invalid metric name %q in TYPE", lineNo, name))
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					problems = append(problems, fmt.Sprintf("line %d: unknown metric type %q", lineNo, typ))
				}
				if _, dup := types[name]; dup {
					problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
				}
				if sampleSeen[name] {
					problems = append(problems, fmt.Sprintf("line %d: TYPE for %s after its samples", lineNo, name))
				}
				types[name] = typ
			}
			continue // other comments (HELP, ...) are fine
		}
		name, labels, value, perr := parsePromSample(line)
		if perr != "" {
			problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, perr))
			continue
		}
		base := histBaseName(name)
		sampleSeen[base] = true
		sampleSeen[name] = true
		if types[base] == "counter" && value < 0 {
			problems = append(problems, fmt.Sprintf("line %d: counter %s has negative value %g", lineNo, name, value))
		}
		if types[base] == "histogram" {
			st := hists[base]
			if st == nil {
				st = &histState{buckets: map[float64]float64{}}
				hists[base] = st
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					problems = append(problems, fmt.Sprintf("line %d: histogram bucket %s without le label", lineNo, name))
					continue
				}
				b, err := parsePromFloat(le)
				if err != nil {
					problems = append(problems, fmt.Sprintf("line %d: unparseable le=%q", lineNo, le))
					continue
				}
				st.buckets[b] = value
			case strings.HasSuffix(name, "_count"):
				st.count, st.hasCnt = value, true
			}
		}
	}
	for base, st := range hists {
		les := make([]float64, 0, len(st.buckets))
		for le := range st.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		if len(les) == 0 || !math.IsInf(les[len(les)-1], 1) {
			problems = append(problems, fmt.Sprintf("histogram %s: no le=\"+Inf\" bucket", base))
			continue
		}
		last := 0.0
		for _, le := range les {
			if st.buckets[le] < last {
				problems = append(problems, fmt.Sprintf("histogram %s: buckets not cumulative at le=%g", base, le))
			}
			last = st.buckets[le]
		}
		if st.hasCnt && st.buckets[math.Inf(1)] != st.count {
			problems = append(problems, fmt.Sprintf("histogram %s: +Inf bucket %g != count %g",
				base, st.buckets[math.Inf(1)], st.count))
		}
	}
	return problems
}

// histBaseName strips the _bucket/_sum/_count suffix so samples attach to
// their TYPEd family name.
func histBaseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validPromLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromSample parses `name[{labels}] value [timestamp]`, returning a
// problem description in perr on failure.
func parsePromSample(line string) (name string, labels map[string]string, value float64, perr string) {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Sprintf("sample without value: %q", line)
	}
	name = rest[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Sprintf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Sprintf("unclosed label block: %q", line)
		}
		for _, pair := range splitLabels(rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Sprintf("malformed label %q", pair)
			}
			ln := strings.TrimSpace(pair[:eq])
			lv := strings.TrimSpace(pair[eq+1:])
			if !validPromLabelName(ln) {
				return "", nil, 0, fmt.Sprintf("invalid label name %q", ln)
			}
			if len(lv) < 2 || lv[0] != '"' || lv[len(lv)-1] != '"' {
				return "", nil, 0, fmt.Sprintf("unquoted label value %q", lv)
			}
			unq, err := strconv.Unquote(lv)
			if err != nil {
				return "", nil, 0, fmt.Sprintf("bad label value %s: %v", lv, err)
			}
			labels[ln] = unq
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Sprintf("expected value [timestamp] after %q, got %q", name, rest)
	}
	v, err := parsePromFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Sprintf("unparseable sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Sprintf("unparseable timestamp %q", fields[1])
		}
	}
	return name, labels, v, ""
}

// splitLabels splits `a="x",b="y"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	start := 0
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch {
		case inQuote && s[i] == '\\':
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case !inQuote && s[i] == ',':
			if p := strings.TrimSpace(s[start:i]); p != "" {
				out = append(out, p)
			}
			start = i + 1
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}
