package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusLintsClean(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("server_requests_total").Add(7)
	reg.Gauge("map_area").Set(123.5)
	h := reg.Histogram("server_request_seconds", ExpBuckets(1e-3, 4, 6))
	for _, v := range []float64{0.002, 0.01, 0.5, 3} {
		h.Observe(v)
	}
	r := reg.Rolling("rolling_request_seconds", ExpBuckets(1e-3, 4, 6), time.Minute, 6)
	r.Observe(0.25)

	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if problems := LintPrometheus(buf.Bytes()); len(problems) > 0 {
		t.Fatalf("our own exposition fails lint: %v\n%s", problems, out)
	}
	for _, want := range []string{
		"# TYPE server_requests_total counter",
		"server_requests_total 7",
		"# TYPE map_area gauge",
		"# TYPE server_request_seconds histogram",
		`server_request_seconds_bucket{le="+Inf"} 4`,
		"server_request_seconds_count 4",
		"# TYPE rolling_request_seconds summary",
		`rolling_request_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// Prometheus histogram buckets are cumulative; ours are stored per-bucket,
// so the writer must convert.
func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{1, 10})
	h.Observe(0.5) // bucket le=1
	h.Observe(5)   // bucket le=10
	h.Observe(50)  // overflow
	var buf bytes.Buffer
	if err := reg.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 2`,
		`lat_bucket{le="+Inf"} 3`,
		"lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"server_requests_total": "server_requests_total",
		"weird-name.with/chars": "weird_name_with_chars",
		"9starts_with_digit":    "_9starts_with_digit",
		"":                      "_",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLintPrometheusCatchesProblems(t *testing.T) {
	for name, tc := range map[string]struct {
		payload string
		wantSub string
	}{
		"bad-name": {
			payload: "bad-metric 1\n",
			wantSub: "invalid metric name",
		},
		"bad-value": {
			payload: "m okay\n",
			wantSub: "unparseable sample value",
		},
		"unclosed-labels": {
			payload: "m{a=\"x\" 1\n",
			wantSub: "unclosed label block",
		},
		"unquoted-label": {
			payload: "m{a=x} 1\n",
			wantSub: "unquoted label value",
		},
		"bad-type": {
			payload: "# TYPE m sideways\nm 1\n",
			wantSub: "unknown metric type",
		},
		"type-after-sample": {
			payload: "m 1\n# TYPE m counter\n",
			wantSub: "after its samples",
		},
		"duplicate-type": {
			payload: "# TYPE m counter\n# TYPE m counter\nm 1\n",
			wantSub: "duplicate TYPE",
		},
		"negative-counter": {
			payload: "# TYPE m counter\nm -4\n",
			wantSub: "negative value",
		},
		"histogram-no-inf": {
			payload: "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			wantSub: "no le=\"+Inf\" bucket",
		},
		"histogram-not-cumulative": {
			payload: "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			wantSub: "not cumulative",
		},
		"histogram-count-mismatch": {
			payload: "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
			wantSub: "!= count",
		},
		"bucket-without-le": {
			payload: "# TYPE h histogram\nh_bucket{x=\"1\"} 5\nh_count 5\n",
			wantSub: "without le label",
		},
	} {
		problems := LintPrometheus([]byte(tc.payload))
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v do not mention %q", name, problems, tc.wantSub)
		}
	}

	if problems := LintPrometheus([]byte("# HELP m something\n# TYPE m gauge\nm{l=\"a,b\\\"c\"} 1.5 1712345678\n\n")); len(problems) > 0 {
		t.Errorf("clean payload flagged: %v", problems)
	}
}
