package obs

import (
	"math"
	"testing"
)

// Edge cases of the bucket-quantile estimator: empty snapshots, all mass
// in the +Inf overflow bucket, q at and beyond the [0, 1] boundaries, and
// histograms recorded with no finite bounds at all.
func TestHistSnapshotQuantileEdges(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var s HistSnapshot
		for _, q := range []float64{0, 0.5, 1} {
			if got := s.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
			}
		}
		if s.Mean() != 0 || s.String() != "count=0" {
			t.Errorf("empty mean/string: %g %q", s.Mean(), s.String())
		}
	})

	t.Run("all-mass-in-overflow", func(t *testing.T) {
		h := newHistogram([]float64{1, 10})
		h.Observe(1e6)
		h.Observe(1e9)
		s := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != 10 {
				t.Errorf("overflow-only Quantile(%g) = %g, want largest finite bound 10", q, got)
			}
		}
	})

	t.Run("q-boundaries", func(t *testing.T) {
		h := newHistogram([]float64{1, 2, 3})
		h.Observe(0.5) // bucket ≤1
		h.Observe(1.5) // bucket ≤2
		h.Observe(2.5) // bucket ≤3
		s := h.Snapshot()
		if got := s.Quantile(0); got != 1 {
			t.Errorf("Quantile(0) = %g, want smallest occupied bound 1", got)
		}
		if got := s.Quantile(1); got != 3 {
			t.Errorf("Quantile(1) = %g, want largest occupied bound 3", got)
		}
	})

	t.Run("q-out-of-range-clamped", func(t *testing.T) {
		h := newHistogram([]float64{1, 2})
		h.Observe(0.5)
		h.Observe(1.5)
		s := h.Snapshot()
		if got := s.Quantile(-3); got != s.Quantile(0) {
			t.Errorf("Quantile(-3) = %g, want Quantile(0) = %g", got, s.Quantile(0))
		}
		if got := s.Quantile(7); got != s.Quantile(1) {
			t.Errorf("Quantile(7) = %g, want Quantile(1) = %g", got, s.Quantile(1))
		}
		if got := s.Quantile(math.NaN()); got != s.Quantile(0) {
			t.Errorf("Quantile(NaN) = %g, want Quantile(0) = %g", got, s.Quantile(0))
		}
	})

	t.Run("no-finite-bounds", func(t *testing.T) {
		h := newHistogram(nil)
		h.Observe(5)
		s := h.Snapshot()
		if got := s.Quantile(0.5); got != 0 {
			t.Errorf("boundless Quantile(0.5) = %g, want 0 (no finite bound to report)", got)
		}
		if s.Count != 1 || s.Sum != 5 {
			t.Errorf("boundless snapshot = %+v", s)
		}
	})

	t.Run("monotone-in-q", func(t *testing.T) {
		h := newHistogram(ExpBuckets(1, 2, 10))
		for i := 0; i < 100; i++ {
			h.Observe(float64(i * 7 % 500))
		}
		s := h.Snapshot()
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile not monotone: Quantile(%g) = %g < %g", q, v, prev)
			}
			prev = v
		}
	})
}
