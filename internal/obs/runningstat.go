package obs

// Rolling latency primitives for steady-state serving: RunningStat keeps
// lock-free cumulative moments (count/mean/stddev/min/max) and
// RollingHistogram keeps a time-sliced ring of fixed-bucket histograms so
// a scrape sees the last window's distribution (rolling p50/p99) rather
// than the process-lifetime one. Both follow the package's discipline:
// nil receivers are valid and inert, and the observe path is lock-free
// and allocation-free (pinned by AllocsPerRun in the package tests).

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// addFloat atomically adds v to a float64 stored as bits in an
// atomic.Uint64, CAS-retrying under contention.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// orderedBits encodes a float64 so that unsigned integer comparison of
// the encodings matches float comparison of the values (the standard
// sign-flip trick). The encoding of any non-NaN value is nonzero, so 0
// can serve as an "unset" sentinel.
func orderedBits(v float64) uint64 {
	b := math.Float64bits(v)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | (1 << 63)
}

func fromOrderedBits(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// RunningStat accumulates count, sum, sum of squares, minimum and maximum
// of a stream of observations, lock-free. The zero value is ready to use;
// a nil *RunningStat is valid and inert. Mean and variance follow the
// cumulative-moment formulation used by ndn-dpdk's runningstat (the
// naive sum-of-squares form is fine at metric precision).
type RunningStat struct {
	count atomic.Uint64
	sum   atomic.Uint64 // float64 bits
	sumSq atomic.Uint64 // float64 bits
	minB  atomic.Uint64 // orderedBits, 0 = unset
	maxB  atomic.Uint64 // orderedBits, 0 = unset
}

// Observe records one sample. NaN samples are dropped.
func (r *RunningStat) Observe(v float64) {
	if r == nil || math.IsNaN(v) {
		return
	}
	r.count.Add(1)
	addFloat(&r.sum, v)
	addFloat(&r.sumSq, v*v)
	e := orderedBits(v)
	for {
		old := r.minB.Load()
		if old != 0 && old <= e {
			break
		}
		if r.minB.CompareAndSwap(old, e) {
			break
		}
	}
	for {
		old := r.maxB.Load()
		if old != 0 && old >= e {
			break
		}
		if r.maxB.CompareAndSwap(old, e) {
			break
		}
	}
}

// RunningStatSnapshot is a point-in-time view of a RunningStat.
type RunningStatSnapshot struct {
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// Snapshot returns the current statistics (zero-valued when empty or on a
// nil receiver). Concurrent observers may make the fields mutually
// slightly stale; each field is individually correct.
func (r *RunningStat) Snapshot() RunningStatSnapshot {
	if r == nil {
		return RunningStatSnapshot{}
	}
	n := r.count.Load()
	if n == 0 {
		return RunningStatSnapshot{}
	}
	sum := math.Float64frombits(r.sum.Load())
	sumSq := math.Float64frombits(r.sumSq.Load())
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 { // rounding
		variance = 0
	}
	return RunningStatSnapshot{
		Count:  n,
		Sum:    sum,
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    fromOrderedBits(r.minB.Load()),
		Max:    fromOrderedBits(r.maxB.Load()),
	}
}

// rollSlot is one time slice of a RollingHistogram. epoch is the absolute
// slot number this slice currently holds (+1, so 0 means never used).
type rollSlot struct {
	epoch  atomic.Uint64
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// RollingHistogram is a fixed-bucket histogram over a sliding time
// window, implemented as a ring of slot histograms: observations land in
// the slot covering the current instant, and a snapshot merges the slots
// still inside the window. A slot is lazily reset the first time an
// observation (or snapshot) reaches it in a new epoch, so there is no
// background goroutine. Observation is lock-free and allocation-free; a
// nil *RollingHistogram is valid and inert.
//
// The merge includes the partially filled current slot, so a snapshot
// covers between window-slotDur and window seconds of history. A writer
// preempted across a full window rotation may land one sample in a
// neighbouring epoch's slot; the smear is bounded and only affects
// monitoring output, never mapping results.
type RollingHistogram struct {
	bounds  []float64
	slotDur time.Duration
	base    time.Time
	slots   []rollSlot
	// now is time.Since(base) — replaceable in tests.
	now func() time.Duration
}

// NewRollingHistogram builds a rolling histogram with the given inclusive
// upper bucket bounds covering roughly `window` of history split into
// `slots` ring slices. window <= 0 means 60s; slots <= 1 means 6.
func NewRollingHistogram(bounds []float64, window time.Duration, slots int) *RollingHistogram {
	if window <= 0 {
		window = time.Minute
	}
	if slots <= 1 {
		slots = 6
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &RollingHistogram{
		bounds:  b,
		slotDur: window / time.Duration(slots),
		base:    time.Now(),
		slots:   make([]rollSlot, slots),
	}
	if h.slotDur <= 0 {
		h.slotDur = time.Second
	}
	h.now = func() time.Duration { return time.Since(h.base) }
	for i := range h.slots {
		h.slots[i].counts = make([]atomic.Uint64, len(b)+1)
	}
	return h
}

// Window returns the nominal width of the sliding window.
func (h *RollingHistogram) Window() time.Duration {
	if h == nil {
		return 0
	}
	return h.slotDur * time.Duration(len(h.slots))
}

// epochNow returns the current absolute slot number + 1 (so it is never
// zero, the slot sentinel for "never used").
func (h *RollingHistogram) epochNow() uint64 {
	return uint64(h.now()/h.slotDur) + 1
}

// claim points s at epoch ep, resetting its contents if it held an older
// epoch. Returns false when the slot has already advanced past ep (the
// caller's sample is stale by a full rotation and is dropped).
func (s *rollSlot) claim(ep uint64) bool {
	for {
		old := s.epoch.Load()
		if old == ep {
			return true
		}
		if old > ep {
			return false
		}
		if s.epoch.CompareAndSwap(old, ep) {
			for i := range s.counts {
				s.counts[i].Store(0)
			}
			s.count.Store(0)
			s.sum.Store(0)
			return true
		}
	}
}

// Observe records one sample into the current window slice.
func (h *RollingHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	ep := h.epochNow()
	s := &h.slots[int(ep%uint64(len(h.slots)))]
	if !s.claim(ep) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	s.counts[i].Add(1)
	s.count.Add(1)
	addFloat(&s.sum, v)
}

// ObserveDuration records a sample given in seconds.
func (h *RollingHistogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Snapshot merges the slots still inside the window (including the
// current, partially filled one) into a HistSnapshot.
func (h *RollingHistogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	cur := h.epochNow()
	oldest := uint64(1)
	if n := uint64(len(h.slots)); cur > n {
		oldest = cur - n + 1
	}
	snap := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.slots {
		s := &h.slots[i]
		ep := s.epoch.Load()
		if ep < oldest || ep > cur {
			continue
		}
		for j := range s.counts {
			snap.Counts[j] += s.counts[j].Load()
		}
		snap.Count += s.count.Load()
		snap.Sum += math.Float64frombits(s.sum.Load())
	}
	return snap
}
