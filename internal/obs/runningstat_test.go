package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestRunningStatBasics(t *testing.T) {
	var r RunningStat
	for _, v := range []float64{4, 2, 8, 6} {
		r.Observe(v)
	}
	s := r.Snapshot()
	if s.Count != 4 || s.Sum != 20 || s.Mean != 5 {
		t.Errorf("snapshot = %+v, want count=4 sum=20 mean=5", s)
	}
	if s.Min != 2 || s.Max != 8 {
		t.Errorf("min/max = %g/%g, want 2/8", s.Min, s.Max)
	}
	// Variance of {4,2,8,6} is 5, stddev sqrt(5).
	if math.Abs(s.Stddev-math.Sqrt(5)) > 1e-9 {
		t.Errorf("stddev = %g, want %g", s.Stddev, math.Sqrt(5))
	}
}

func TestRunningStatNegativeAndNaN(t *testing.T) {
	var r RunningStat
	r.Observe(-3)
	r.Observe(math.NaN()) // dropped
	r.Observe(-1)
	s := r.Snapshot()
	if s.Count != 2 || s.Min != -3 || s.Max != -1 {
		t.Errorf("snapshot = %+v, want count=2 min=-3 max=-1", s)
	}
}

func TestRunningStatNilAndEmpty(t *testing.T) {
	var nilStat *RunningStat
	nilStat.Observe(1)
	if s := nilStat.Snapshot(); s != (RunningStatSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
	var empty RunningStat
	if s := empty.Snapshot(); s != (RunningStatSnapshot{}) {
		t.Errorf("empty snapshot = %+v", s)
	}
}

func TestRunningStatConcurrent(t *testing.T) {
	var r RunningStat
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Observe(float64(i%10 + 1))
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("min/max = %g/%g, want 1/10", s.Min, s.Max)
	}
	if math.Abs(s.Sum-float64(workers)*5500) > 1e-6 {
		t.Errorf("sum = %g, want %g", s.Sum, float64(workers)*5500)
	}
}

// fakeRolling builds a rolling histogram whose clock the test controls.
func fakeRolling(bounds []float64, window time.Duration, slots int) (*RollingHistogram, *time.Duration) {
	h := NewRollingHistogram(bounds, window, slots)
	elapsed := new(time.Duration)
	h.now = func() time.Duration { return *elapsed }
	return h, elapsed
}

func TestRollingHistogramWindow(t *testing.T) {
	h, clock := fakeRolling([]float64{1, 10, 100}, 60*time.Second, 6)
	h.Observe(5)
	h.Observe(50)
	snap := h.Snapshot()
	if snap.Count != 2 {
		t.Fatalf("fresh samples missing: count = %d", snap.Count)
	}
	if q := snap.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10", q)
	}

	// Half a window later both samples are still visible.
	*clock = 30 * time.Second
	if got := h.Snapshot().Count; got != 2 {
		t.Errorf("count after 30s = %d, want 2", got)
	}

	// New observation in a later slot coexists with the old ones.
	h.Observe(0.5)
	if got := h.Snapshot().Count; got != 3 {
		t.Errorf("count after new sample = %d, want 3", got)
	}

	// Past the full window the first samples age out; the 30s one stays
	// until its own slot leaves the window.
	*clock = 65 * time.Second
	snap = h.Snapshot()
	if snap.Count != 1 {
		t.Errorf("count after window rollover = %d, want 1 (only the 30s sample)", snap.Count)
	}

	// Far future: everything aged out.
	*clock = 10 * time.Minute
	if got := h.Snapshot().Count; got != 0 {
		t.Errorf("count long after = %d, want 0", got)
	}

	// A slot is reclaimed and reset when written again in a new epoch.
	h.Observe(2)
	snap = h.Snapshot()
	if snap.Count != 1 || snap.Sum != 2 {
		t.Errorf("reused slot snapshot = %+v, want exactly the new sample", snap)
	}
}

func TestRollingHistogramNil(t *testing.T) {
	var h *RollingHistogram
	h.Observe(1)
	h.ObserveDuration(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil rolling snapshot = %+v", s)
	}
	if h.Window() != 0 {
		t.Errorf("nil window = %v", h.Window())
	}
}

func TestRollingHistogramConcurrent(t *testing.T) {
	h := NewRollingHistogram(ExpBuckets(1e-4, 4, 10), time.Minute, 6)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 8*500 {
		t.Errorf("count = %d, want %d", got, 8*500)
	}
}

func TestRegistryRolling(t *testing.T) {
	reg := NewRegistry()
	h := reg.Rolling("req_seconds", []float64{0.1, 1}, time.Minute, 6)
	if h == nil {
		t.Fatal("Rolling returned nil on an enabled registry")
	}
	if reg.Rolling("req_seconds", nil, 0, 0) != h {
		t.Error("Rolling lookup should return the same instance")
	}
	h.Observe(0.05)
	snap := reg.Snapshot()
	rs, ok := snap.Rolling["req_seconds"]
	if !ok || rs.Count != 1 {
		t.Errorf("registry snapshot rolling = %+v", snap.Rolling)
	}
	if txt := snap.Format(""); !containsLine(txt, "rolling req_seconds") {
		t.Errorf("Format missing rolling line:\n%s", txt)
	}

	var nilReg *Registry
	if nilReg.Rolling("x", nil, 0, 0) != nil {
		t.Error("nil registry should hand out nil rolling handles")
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// The observe paths of both rolling primitives must stay allocation-free:
// they run once per request (and once per pipeline stage per request) in
// the serving hot path.
func TestRollingObserveZeroAllocs(t *testing.T) {
	var rs RunningStat
	rh := NewRollingHistogram(ExpBuckets(1e-4, 4, 10), time.Minute, 6)
	var nilRS *RunningStat
	var nilRH *RollingHistogram
	allocs := testing.AllocsPerRun(1000, func() {
		rs.Observe(0.25)
		rh.Observe(0.25)
		rh.ObserveDuration(1.5)
		nilRS.Observe(1)
		nilRH.Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("rolling observe path allocates: %v allocs/op", allocs)
	}
}

func BenchmarkRunningStatObserve(b *testing.B) {
	var rs RunningStat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs.Observe(float64(i&1023) * 1e-3)
	}
}

func BenchmarkRollingHistogramObserve(b *testing.B) {
	rh := NewRollingHistogram(ExpBuckets(1e-4, 4, 12), time.Minute, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rh.Observe(float64(i&1023) * 1e-3)
	}
}
