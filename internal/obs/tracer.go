// Package obs is the mapper's observability layer: a span/event tracer
// with Chrome trace-event and JSONL exporters, and a metrics registry of
// counters, gauges and fixed-bucket histograms.
//
// Everything in the package is nil-safe and designed so that the
// *disabled* path — a nil *Tracer, nil *Registry, or any nil metric
// handle — costs nothing: no allocation, no clock read, no lock. Hot
// loops in the mapper therefore call tracer and metric methods
// unconditionally; whether observability is on is decided once, when the
// caller constructs (or does not construct) the tracer and registry. The
// zero-allocation contract of the disabled path is pinned by
// testing.AllocsPerRun in the package tests.
//
// The tracer records two kinds of entries: spans (a named interval on a
// track, with up to MaxAttrs key/value attributes) and instant events.
// Tracks map onto Chrome trace-event thread IDs, so a Perfetto timeline
// shows one track per DP worker plus track 0 for the pipeline phases.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// PipelineTrack is the track (Chrome trace tid) carrying the top-level
// pipeline phase spans; DP workers use tracks 1..N.
const PipelineTrack = 0

// MaxAttrs is the number of attribute slots on a span or event; further
// Set calls are silently dropped. A fixed array keeps the enabled path
// allocation-light and the disabled path allocation-free.
const MaxAttrs = 8

// DefaultMaxRecords bounds the tracer's in-memory buffer; once reached,
// further spans and events are counted in Dropped() instead of stored.
const DefaultMaxRecords = 1 << 20

// Attr is one span or event attribute: a key with either an integer or a
// string value.
type Attr struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// record is one finished span ('X') or instant event ('i').
type record struct {
	name  string
	ph    byte
	tid   int64
	start time.Duration
	dur   time.Duration
	attrs [MaxAttrs]Attr
	nattr int
}

// Tracer collects spans and instant events from a mapping run. A nil
// *Tracer is a valid, fully disabled tracer: every method is a no-op.
// Construct with NewTracer to enable collection. Tracers are safe for
// concurrent use by multiple goroutines.
type Tracer struct {
	base time.Time

	mu      sync.Mutex
	recs    []record
	max     int
	dropped uint64
}

// NewTracer returns an enabled tracer buffering up to maxRecords entries;
// maxRecords <= 0 means DefaultMaxRecords.
func NewTracer(maxRecords int) *Tracer {
	if maxRecords <= 0 {
		maxRecords = DefaultMaxRecords
	}
	return &Tracer{base: time.Now(), max: maxRecords}
}

// Span is an in-flight interval started by StartSpan. The zero Span (from
// a nil tracer) is inert: attribute setters and End do nothing.
type Span struct {
	tr    *Tracer
	name  string
	tid   int64
	start time.Duration
	attrs [MaxAttrs]Attr
	nattr int
}

// StartSpan opens a span on the pipeline track. Close it with End.
func (t *Tracer) StartSpan(name string) Span {
	return t.StartSpanOn(PipelineTrack, name)
}

// StartSpanOn opens a span on an explicit track (0 = pipeline, 1..N = DP
// workers). Close it with End.
func (t *Tracer) StartSpanOn(track int, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, tid: int64(track), start: time.Since(t.base)}
}

// SetInt attaches an integer attribute to the span.
func (s *Span) SetInt(key string, v int64) {
	if s.tr == nil || s.nattr >= MaxAttrs {
		return
	}
	s.attrs[s.nattr] = Attr{Key: key, Int: v}
	s.nattr++
}

// SetStr attaches a string attribute to the span.
func (s *Span) SetStr(key, v string) {
	if s.tr == nil || s.nattr >= MaxAttrs {
		return
	}
	s.attrs[s.nattr] = Attr{Key: key, Str: v, IsStr: true}
	s.nattr++
}

// End closes the span and records it. Calling End on the zero Span is a
// no-op.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	rec := record{
		name:  s.name,
		ph:    'X',
		tid:   s.tid,
		start: s.start,
		dur:   time.Since(s.tr.base) - s.start,
		attrs: s.attrs,
		nattr: s.nattr,
	}
	s.tr.record(rec)
}

// Event records an instant event on a track.
func (t *Tracer) Event(track int, name string) {
	if t == nil {
		return
	}
	t.record(record{name: name, ph: 'i', tid: int64(track), start: time.Since(t.base)})
}

// EventInt records an instant event carrying one integer attribute.
func (t *Tracer) EventInt(track int, name, key string, v int64) {
	if t == nil {
		return
	}
	rec := record{name: name, ph: 'i', tid: int64(track), start: time.Since(t.base), nattr: 1}
	rec.attrs[0] = Attr{Key: key, Int: v}
	t.record(rec)
}

func (t *Tracer) record(rec record) {
	t.mu.Lock()
	if len(t.recs) >= t.max {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.recs = append(t.recs, rec)
	t.mu.Unlock()
}

// Len returns the number of buffered records.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// Dropped returns how many records were discarded after the buffer
// filled; a nonzero value means the trace is truncated, not corrupted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanNames returns the distinct span/event names recorded, sorted; handy
// for tests and the trace linter.
func (t *Tracer) SpanNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := map[string]bool{}
	for _, r := range t.recs {
		seen[r.name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// snapshot copies the record buffer so exporters run without holding the
// tracer lock.
func (t *Tracer) snapshot() []record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]record, len(t.recs))
	copy(out, t.recs)
	return out
}

func attrMap(attrs [MaxAttrs]Attr, n int) map[string]any {
	if n == 0 {
		return nil
	}
	m := make(map[string]any, n)
	for _, a := range attrs[:n] {
		if a.IsStr {
			m[a.Key] = a.Str
		} else {
			m[a.Key] = a.Int
		}
	}
	return m
}

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// understood by Perfetto and chrome://tracing).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the buffered records as a Chrome trace-event
// JSON object ({"traceEvents": [...]}), one track per recorded tid, with
// thread-name metadata so Perfetto labels the pipeline and worker tracks.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	recs := t.snapshot()
	tids := map[int64]bool{}
	for _, r := range recs {
		tids[r.tid] = true
	}
	sorted := make([]int64, 0, len(tids))
	for tid := range tids {
		sorted = append(sorted, tid)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	events := make([]chromeEvent, 0, len(recs)+len(sorted)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "asyncmap"},
	})
	for _, tid := range sorted {
		label := "pipeline"
		if tid != PipelineTrack {
			label = fmt.Sprintf("worker %d", tid)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": label},
		})
	}
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.name,
			Cat:  "map",
			Ph:   string(r.ph),
			Ts:   micros(r.start),
			Pid:  1,
			Tid:  r.tid,
			Args: attrMap(r.attrs, r.nattr),
		}
		if r.ph == 'X' {
			d := micros(r.dur)
			ev.Dur = &d
		} else {
			ev.S = "t" // thread-scoped instant
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ns"})
}

// jsonlRecord is one line of the plain event log.
type jsonlRecord struct {
	TsUs  float64        `json:"ts_us"`
	DurUs *float64       `json:"dur_us,omitempty"`
	Ph    string         `json:"ph"` // "span" or "event"
	Tid   int64          `json:"tid"`
	Name  string         `json:"name"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL writes the buffered records as one JSON object per line, in
// recording order — a grep/jq-friendly alternative to the Chrome format.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range t.snapshot() {
		rec := jsonlRecord{
			TsUs:  micros(r.start),
			Ph:    "event",
			Tid:   r.tid,
			Name:  r.name,
			Attrs: attrMap(r.attrs, r.nattr),
		}
		if r.ph == 'X' {
			d := micros(r.dur)
			rec.DurUs = &d
			rec.Ph = "span"
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
