package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestBadInputStatuses is the malformed-input suite of the fuzzing issue:
// every way a client can hand us garbage must answer 400 (never 422,
// never process death), while a well-formed design still maps.
func TestBadInputStatuses(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name string
		req  MapRequest
		want int
	}{
		{"good eqn", MapRequest{Design: fig3Eqn, Format: "eqn"}, http.StatusOK},
		{"good blif", MapRequest{Design: fig3Blif, Format: "blif"}, http.StatusOK},
		{"empty design", MapRequest{Design: "   \n"}, http.StatusBadRequest},
		{"malformed eqn", MapRequest{Design: "INPUT(a)\nOUTPUT(f)\nf = a *;\n", Format: "eqn"}, http.StatusBadRequest},
		{"eqn undefined output", MapRequest{Design: "INPUT(a)\nOUTPUT(zz)\nf = a;\n", Format: "eqn"}, http.StatusBadRequest},
		{"malformed blif", MapRequest{Design: ".model x\n.inputs a\n.outputs f\n.names a f\n2 1\n.end\n", Format: "blif"}, http.StatusBadRequest},
		{"deeply nested eqn", MapRequest{
			Design: "INPUT(a)\nOUTPUT(f)\nf = " + strings.Repeat("(", 50000) + "a" + strings.Repeat(")", 50000) + ";\n",
			Format: "eqn"}, http.StatusBadRequest},
		{"unknown format", MapRequest{Design: fig3Eqn, Format: "vhdl"}, http.StatusBadRequest},
		{"unknown mode", MapRequest{Design: fig3Eqn, Format: "eqn", Mode: "turbo"}, http.StatusBadRequest},
		{"unknown objective", MapRequest{Design: fig3Eqn, Format: "eqn", Objective: "power"}, http.StatusBadRequest},
		{"unknown library", MapRequest{Design: fig3Eqn, Format: "eqn", Library: "NOPE"}, http.StatusBadRequest},
		{"unknown output", MapRequest{Design: fig3Eqn, Format: "eqn", Output: "pdf"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, h, "/map", tc.req)
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d; body: %s", w.Code, tc.want, w.Body.String())
			}
		})
	}
}
