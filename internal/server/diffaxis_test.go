package server

// End-to-end fleet diffcheck axis: diffcheck.Check drives a real
// in-process fleet through the FleetMap hook and must report zero
// violations — on a healthy fleet and under fault injection. This is
// the test-side twin of the wiring cmd/gfmfuzz -fleet performs.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"gfmap/internal/core"
	"gfmap/internal/diffcheck"
	"gfmap/internal/eqn"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

// fleetAxisHook adapts an in-process fleet to diffcheck's FleetMap
// contract: serialize the design once, map the identical text through
// the coordinator and the local twin, return the pair.
func fleetAxisHook(f *InProcessFleet, libName string) diffcheck.FleetMapFunc {
	return func(net *network.Network, mode core.Mode) (*diffcheck.FleetOutcome, error) {
		req := MapRequest{
			Name:    net.Name,
			Format:  "eqn",
			Design:  eqn.WriteString(net),
			Library: libName,
			Mode:    mode.String(),
		}
		viaFleet, viaLocal, err := f.MapBoth(req)
		if err != nil {
			return nil, err
		}
		fo := &diffcheck.FleetOutcome{FleetErr: viaFleet.Error, LocalErr: viaLocal.Error}
		if viaFleet.MapResponse != nil {
			fo.FleetNetlist, fo.FleetStats = viaFleet.Netlist, viaFleet.Stats
		}
		if viaLocal.MapResponse != nil {
			fo.LocalNetlist, fo.LocalStats = viaLocal.Netlist, viaLocal.Stats
		}
		return fo, nil
	}
}

func diffAxisOptions(t *testing.T, f *InProcessFleet) diffcheck.Options {
	t.Helper()
	lib, err := library.Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	// SkipVerify: the semantic oracles are exercised by the diffcheck
	// suite itself; here the fleet axis is the invariant under test.
	return diffcheck.Options{Lib: lib, SkipVerify: true, SkipStoreAxes: true,
		FleetMap: fleetAxisHook(f, "LSI9K")}
}

func checkSeeds(t *testing.T, opts diffcheck.Options, seeds ...uint64) {
	t.Helper()
	for _, seed := range seeds {
		net := diffcheck.Generate(seed, diffcheck.GenConfig{Inputs: 5, Nodes: 8, MaxFanin: 3})
		if rep := diffcheck.Check(net, opts); rep.Failed() {
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}

// TestFleetDiffcheckAxis: zero violations over a healthy two-worker
// fleet (single-design batches take the cone-sharded path).
func TestFleetDiffcheckAxis(t *testing.T) {
	defer fleetGuard(t)()
	f, err := StartInProcessFleet(2, Config{Libraries: []string{"LSI9K"}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	checkSeeds(t, diffAxisOptions(t, f), 1, 2, 3)
}

// TestFleetDiffcheckAxisUnderFaults: the axis still reports zero
// violations when one worker of the fleet corrupts every other reply —
// retries, validation and local assembly keep byte identity.
func TestFleetDiffcheckAxisUnderFaults(t *testing.T) {
	corrupting, _ := wrapWorker(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n%2 == 1 {
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("}{ not json"))
			return true
		}
		return false
	})
	healthy, _ := wrapWorker(t, func(int64, http.ResponseWriter, *http.Request) bool { return false })
	coord, local := fleetOverWorkers(t, -1, corrupting.URL, healthy.URL)
	coordSrv := httptest.NewServer(coord.Handler())
	t.Cleanup(coordSrv.Close)
	localSrv := httptest.NewServer(local.Handler())
	t.Cleanup(localSrv.Close)
	defer fleetGuard(t)()

	f := &InProcessFleet{CoordinatorURL: coordSrv.URL, LocalURL: localSrv.URL}
	checkSeeds(t, diffAxisOptions(t, f), 4, 5)
}
