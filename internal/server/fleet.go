package server

// Fleet coordination: the server-side half of coordinator mode.
//
// A server started with FleetWorkers dispatches /map/batch work across
// plain asyncmapd workers through the internal/fleet queue. Two shapes:
//
//   - design-wise: each batch design becomes one /map job on some worker;
//     the coordinator relays the worker's response verbatim.
//   - cone-wise: a single-design batch on a multi-worker fleet is split
//     at cone granularity — every worker runs /map/cones for its shard of
//     the covering DP and ships back encoded per-cone solutions; the
//     coordinator seeds core.MapDelta with their union and assembles the
//     netlist locally.
//
// Determinism is structural, not best-effort: cone assembly replays
// recorded solutions through the same exhaustive validation MapDelta
// applies to its own cache, so a missing / corrupt / wrong-identity shard
// degrades to solving those cones locally and the emitted netlist is
// byte-identical to a single-process run no matter which workers died.
// Design-wise jobs fall back to local mapping after remote exhaustion for
// the same reason: a batch always completes with the same answers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gfmap/internal/core"
	"gfmap/internal/fleet"
)

// fleetTransportSlack pads a shard's attempt deadline past the design's
// own mapping deadline, so a worker that times out answers with its
// structured 504 body instead of the coordinator sawing the connection
// off first.
const fleetTransportSlack = 2 * time.Second

// ConeShardRequest asks a worker to solve one shard of a design's cones:
// the full design request plus the shard coordinates. The worker
// validates the request exactly like /map and runs the pipeline front
// half only (no emission).
type ConeShardRequest struct {
	MapRequest
	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`
}

// ConeShardResponse carries one shard's encoded cone solutions. LibFP and
// OptHash identify what they were computed against; the coordinator
// discards a response whose identity differs from its own expectation.
type ConeShardResponse struct {
	RequestID string            `json:"request_id,omitempty"`
	LibFP     string            `json:"lib_fp"`
	OptHash   string            `json:"opt_hash"`
	Cones     int               `json:"cones"`
	Solved    int               `json:"solved"`
	Solutions map[string][]byte `json:"solutions"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

// fleetState wires a fleet.Coordinator into the server.
type fleetState struct {
	s     *Server
	coord *fleet.Coordinator

	// localMu serialises design-job local fallbacks: the batch already
	// holds one admission slot, and fallbacks bypassing admission (they
	// must, or a busy coordinator would deadlock its own batch) should not
	// multiply beyond the single-process batch behaviour they emulate.
	localMu sync.Mutex
}

func newFleetState(s *Server) (*fleetState, error) {
	f := &fleetState{s: s}
	coord, err := fleet.New(fleet.Config{
		Workers:     s.cfg.FleetWorkers,
		HedgeAfter:  s.cfg.FleetHedgeAfter,
		MaxAttempts: s.cfg.FleetMaxAttempts,
		PerWorker:   s.cfg.FleetPerWorker,
		Client:      s.cfg.FleetClient,
		Registry:    s.reg,
		Validate:    validateFleetBody,
		Local:       f.local,
	})
	if err != nil {
		return nil, err
	}
	f.coord = coord
	return f, nil
}

// validateFleetBody is the fleet's byte-validity gate: a reply only wins
// if it parses as the wire type its status implies. Anything else is a
// corrupt worker and the attempt is retried elsewhere.
func validateFleetBody(job fleet.Job, status int, body []byte) error {
	if status == http.StatusOK {
		if job.Path == "/map/cones" {
			var cr ConeShardResponse
			if err := json.Unmarshal(body, &cr); err != nil {
				return err
			}
			if cr.LibFP == "" || cr.OptHash == "" {
				return errors.New("cone response missing solution identity")
			}
			return nil
		}
		var mr MapResponse
		if err := json.Unmarshal(body, &mr); err != nil {
			return err
		}
		if mr.Name == "" {
			return errors.New("map response missing design name")
		}
		return nil
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		return err
	}
	if eb.Error == "" {
		return errors.New("error response missing message")
	}
	return nil
}

// local is the fleet's fallback after remote exhaustion. Design jobs map
// in-process, mimicking the worker's HTTP envelope so the result decodes
// uniformly. Cone jobs return an empty (identity-less) body: assembly
// solves missing cones itself, so solving here would do the work twice.
func (f *fleetState) local(ctx context.Context, job fleet.Job) (int, []byte, error) {
	if job.Path == "/map/cones" {
		return http.StatusOK, []byte("{}"), nil
	}
	f.localMu.Lock()
	defer f.localMu.Unlock()
	var req MapRequest
	if err := json.Unmarshal(job.Body, &req); err != nil {
		return 0, nil, err
	}
	resp, err := f.s.mapOne(ctx, req)
	if err != nil {
		body, _ := json.Marshal(errorBody{Error: err.Error()})
		return f.s.statusFor(err), body, nil
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, body, nil
}

// batchOutcomes dispatches one batch across the fleet. A single design on
// a multi-worker fleet is split cone-wise; otherwise each design is one
// job.
func (f *fleetState) batchOutcomes(ctx context.Context, rid string, designs []MapRequest) <-chan batchOutcome {
	if len(designs) == 1 && len(f.coord.WorkerURLs()) > 1 {
		out := make(chan batchOutcome, 1)
		go func() {
			defer close(out)
			resp, err := f.mapViaCones(ctx, rid, designs[0])
			out <- batchOutcome{index: 0, resp: resp, err: err}
		}()
		return out
	}
	jobs := make([]fleet.Job, len(designs))
	for i, req := range designs {
		body, _ := json.Marshal(req)
		jobs[i] = fleet.Job{
			Index:   i,
			Path:    "/map",
			Body:    body,
			Header:  fleetHeader(rid),
			Timeout: f.s.timeoutFor(req) + fleetTransportSlack,
		}
	}
	out := make(chan batchOutcome, len(designs))
	go func() {
		defer close(out)
		for r := range f.coord.Go(ctx, jobs) {
			out <- designOutcome(r)
		}
	}()
	return out
}

// designOutcome decodes one design job's fleet result into the batch
// outcome the response writers consume.
func designOutcome(r fleet.Result) batchOutcome {
	o := batchOutcome{index: r.Index}
	switch {
	case r.Err != nil:
		o.err = r.Err
	case r.Status == http.StatusOK:
		var mr MapResponse
		if err := json.Unmarshal(r.Body, &mr); err != nil {
			o.err = fmt.Errorf("decode worker response: %w", err)
			break
		}
		o.resp = &mr
	default:
		var eb errorBody
		if err := json.Unmarshal(r.Body, &eb); err != nil || eb.Error == "" {
			o.err = fmt.Errorf("worker status %d", r.Status)
			break
		}
		o.err = errors.New(eb.Error)
	}
	return o
}

// mapViaCones maps one design by sharding its cones across every worker
// and assembling locally. Lost, corrupt or wrong-identity shards are
// simply absent from the seed — MapDelta solves those cones here, so the
// result is byte-identical to a single-process run regardless of worker
// behaviour.
func (f *fleetState) mapViaCones(ctx context.Context, rid string, req MapRequest) (*MapResponse, error) {
	s := f.s
	rr, err := s.resolveRequest(ctx, req)
	if err != nil {
		return nil, err
	}
	wantFP, wantOH, err := core.SolutionIdentity(rr.lib, rr.opts)
	if err != nil {
		return nil, err
	}
	shards := len(f.coord.WorkerURLs())
	jobs := make([]fleet.Job, shards)
	for i := range jobs {
		body, _ := json.Marshal(ConeShardRequest{MapRequest: req, ShardIndex: i, ShardCount: shards})
		jobs[i] = fleet.Job{
			Index:   i,
			Path:    "/map/cones",
			Body:    body,
			Header:  fleetHeader(rid),
			Timeout: rr.timeout + fleetTransportSlack,
		}
	}
	union := make(map[string][]byte)
	for _, r := range f.coord.Do(ctx, jobs) {
		if r.Err != nil || r.Status != http.StatusOK {
			continue // lost shard: its cones are solved during assembly
		}
		var cr ConeShardResponse
		if json.Unmarshal(r.Body, &cr) != nil {
			continue
		}
		if cr.LibFP != wantFP || cr.OptHash != wantOH {
			continue // computed against a different library/options
		}
		for k, v := range cr.Solutions {
			union[k] = v
		}
	}
	runCtx, cancel := context.WithTimeout(ctx, rr.timeout)
	defer cancel()
	opts := rr.opts
	opts.Ctx = runCtx
	start := time.Now()
	res, err := core.MapDelta(core.NewSolutionSeed(wantFP, wantOH, union), rr.net, rr.lib, opts)
	elapsed := time.Since(start)
	s.reqSeconds.Observe(elapsed.Seconds())
	if err != nil {
		return nil, err
	}
	return s.finishMapped(rr, res, elapsed)
}

// fleetHeader propagates the coordinator's request ID to the workers, so
// one batch correlates across every access log and trace in the fleet.
func fleetHeader(rid string) http.Header {
	h := http.Header{}
	if rid != "" {
		h.Set(RequestIDHeader, rid)
	}
	return h
}

// handleMapCones is the worker-side shard endpoint: validate exactly like
// /map, run the pipeline front half for the requested shard, return the
// encoded solutions. Registered unconditionally — any asyncmapd can serve
// in a fleet without special configuration.
func (s *Server) handleMapCones(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFromContext(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, rid, errors.New("POST only"))
		return
	}
	s.requests.Inc()
	var creq ConeShardRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&creq); err != nil {
		s.errorsC.Inc()
		writeError(w, http.StatusBadRequest, rid, fmt.Errorf("bad cone request: %w", err))
		return
	}
	release, err := s.acquire(r.Context())
	if err != nil {
		s.errorsC.Inc()
		if errors.Is(err, errBusy) {
			s.rejected.Inc()
			s.writeBusy(w, rid, err)
		} else {
			writeError(w, 499, rid, err)
		}
		return
	}
	defer release()
	resp, err := s.coneShard(r.Context(), creq)
	if err != nil {
		s.errorsC.Inc()
		writeError(w, s.statusFor(err), rid, err)
		return
	}
	resp.RequestID = rid
	writeJSON(w, resp)
}

func (s *Server) coneShard(ctx context.Context, creq ConeShardRequest) (*ConeShardResponse, error) {
	if creq.ShardCount < 1 || creq.ShardIndex < 0 || creq.ShardIndex >= creq.ShardCount {
		return nil, badInput(fmt.Errorf("shard %d of %d out of range", creq.ShardIndex, creq.ShardCount))
	}
	rr, err := s.resolveRequest(ctx, creq.MapRequest)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithTimeout(ctx, rr.timeout)
	defer cancel()
	start := time.Now()
	cs, err := core.MapCones(runCtx, rr.net, rr.lib, rr.opts, creq.ShardIndex, creq.ShardCount)
	if err != nil {
		return nil, err
	}
	return &ConeShardResponse{
		LibFP:     cs.LibFP,
		OptHash:   cs.OptHash,
		Cones:     cs.Cones,
		Solved:    cs.Solved,
		Solutions: cs.Solutions,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}
