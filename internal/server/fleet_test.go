package server

// Fleet fault-injection suite: every test maps the same batch through a
// coordinator-fronted fleet and a plain single-process server and
// requires the per-design outcomes — netlists above all — to be
// byte-identical, while workers are killed, delayed past the hedging
// threshold, or made to return corrupt bodies.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fleetGuard is the goroutine-leak guard for dispatch tests (the pattern
// from internal/core's ctx tests, plus flushing pooled keep-alive
// connections, which park goroutines without leaking them).
func fleetGuard(t *testing.T) func() {
	t.Helper()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			http.DefaultTransport.(*http.Transport).CloseIdleConnections()
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	}
}

func postBatch(t *testing.T, url string, body BatchRequest, stream bool) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	target := url + "/map/batch"
	if stream {
		target += "?stream=1"
	}
	resp, err := http.Post(target, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBatch(t *testing.T, resp *http.Response) BatchResponse {
	t.Helper()
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("bad batch response: %v", err)
	}
	return br
}

// decodeStream reads an NDJSON batch stream back into request order and
// validates the stream contract: every line parses, indices are unique
// and complete, and the trailer is the last line.
func decodeStream(t *testing.T, resp *http.Response, n int) BatchResponse {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	br := BatchResponse{Results: make([]BatchResult, n)}
	seen := make(map[int]bool)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	sawTrailer := false
	for sc.Scan() {
		if sawTrailer {
			t.Fatalf("line after trailer: %s", sc.Text())
		}
		var trailer streamTrailer
		if err := json.Unmarshal(sc.Bytes(), &trailer); err == nil && trailer.Done {
			br.Succeeded, br.Failed = trailer.Succeeded, trailer.Failed
			sawTrailer = true
			continue
		}
		var item streamItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad stream line: %v\n%s", err, sc.Text())
		}
		if seen[item.Index] || item.Index < 0 || item.Index >= n {
			t.Fatalf("bad/duplicate stream index %d", item.Index)
		}
		seen[item.Index] = true
		br.Results[item.Index] = BatchResult{MapResponse: item.Result, Error: item.Error}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without trailer")
	}
	if len(seen) != n {
		t.Fatalf("stream delivered %d results, want %d", len(seen), n)
	}
	return br
}

// requireSameOutcomes asserts per-design byte identity between a fleet
// batch and its local twin.
func requireSameOutcomes(t *testing.T, label string, fleet, local BatchResponse) {
	t.Helper()
	if len(fleet.Results) != len(local.Results) {
		t.Fatalf("%s: %d fleet results vs %d local", label, len(fleet.Results), len(local.Results))
	}
	if fleet.Succeeded != local.Succeeded || fleet.Failed != local.Failed {
		t.Fatalf("%s: counts fleet %d/%d vs local %d/%d", label,
			fleet.Succeeded, fleet.Failed, local.Succeeded, local.Failed)
	}
	for i := range fleet.Results {
		fr, lr := fleet.Results[i], local.Results[i]
		if (fr.Error == "") != (lr.Error == "") {
			t.Fatalf("%s design %d: fleet error %q vs local error %q", label, i, fr.Error, lr.Error)
		}
		if fr.Error != "" {
			continue // both failed; exact error text may embed worker detail
		}
		if fr.Netlist != lr.Netlist {
			t.Fatalf("%s design %d: netlists differ:\n%s\n--- local ---\n%s",
				label, i, fr.Netlist, lr.Netlist)
		}
		if fr.Gates != lr.Gates || fr.Area != lr.Area || fr.Delay != lr.Delay {
			t.Fatalf("%s design %d: metrics differ: fleet %d/%.3f/%.3f local %d/%.3f/%.3f",
				label, i, fr.Gates, fr.Area, fr.Delay, lr.Gates, lr.Area, lr.Delay)
		}
	}
}

func testBatch() BatchRequest {
	return BatchRequest{
		Defaults: MapRequest{Format: "eqn", Library: "LSI9K"},
		Designs: []MapRequest{
			{Name: "fig3", Design: fig3Eqn},
			{Name: "multi", Design: slowEqn(3)},
			{Name: "broken", Design: "INPUT(a\nOUTPUT(f)\nf = a;"}, // parse error: isolation
			{Name: "sync", Design: fig3Eqn, Mode: "sync"},
			{Name: "delayobj", Design: slowEqn(2), Objective: "delay"},
		},
	}
}

// TestFleetBatchByteIdentity: the tentpole determinism bar on a healthy
// fleet — buffered and streamed, design-wise and cone-wise, all
// byte-identical to the single-process twin.
func TestFleetBatchByteIdentity(t *testing.T) {
	defer fleetGuard(t)()
	f, err := StartInProcessFleet(2, Config{Libraries: []string{"LSI9K", "CMOS3"}})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	batch := testBatch()
	n := len(batch.Designs)

	local := decodeBatch(t, postBatch(t, f.LocalURL, batch, false))
	viaFleet := decodeBatch(t, postBatch(t, f.CoordinatorURL, batch, false))
	requireSameOutcomes(t, "buffered", viaFleet, local)

	streamed := decodeStream(t, postBatch(t, f.CoordinatorURL, batch, true), n)
	requireSameOutcomes(t, "streamed", streamed, local)

	// Cone-wise: a single-design batch on a 2-worker fleet splits the
	// covering DP across both workers and assembles locally.
	single := BatchRequest{Defaults: batch.Defaults,
		Designs: []MapRequest{{Name: "single", Design: slowEqn(4)}}}
	localOne := decodeBatch(t, postBatch(t, f.LocalURL, single, false))
	fleetOne := decodeBatch(t, postBatch(t, f.CoordinatorURL, single, false))
	requireSameOutcomes(t, "cone-sharded", fleetOne, localOne)

	// Fleet health is on the coordinator's /statusz.
	resp, err := http.Get(f.CoordinatorURL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st StatuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Fleet == nil || len(st.Fleet.Workers) != 2 {
		t.Fatalf("coordinator /statusz missing fleet section: %+v", st.Fleet)
	}
	var wins uint64
	for _, w := range st.Fleet.Workers {
		wins += w.Wins
	}
	if wins == 0 {
		t.Fatal("no worker wins recorded on /statusz")
	}
}

// wrapWorker fronts a real worker server with a fault-injecting handler.
func wrapWorker(t *testing.T, fault func(n int64, w http.ResponseWriter, r *http.Request) bool) (*httptest.Server, *Server) {
	t.Helper()
	worker := newTestServer(t, Config{Libraries: []string{"LSI9K", "CMOS3"}})
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fault(served.Add(1), w, r) {
			return
		}
		worker.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, worker
}

// fleetOverWorkers builds a coordinator server over explicit worker URLs
// plus a plain local twin for comparison.
func fleetOverWorkers(t *testing.T, hedge time.Duration, urls ...string) (coord, local *Server) {
	t.Helper()
	coord = newTestServer(t, Config{
		Libraries:       []string{"LSI9K", "CMOS3"},
		FleetWorkers:    urls,
		FleetHedgeAfter: hedge,
	})
	local = newTestServer(t, Config{Libraries: []string{"LSI9K", "CMOS3"}})
	return coord, local
}

func batchViaHandler(t *testing.T, s *Server, batch BatchRequest) BatchResponse {
	t.Helper()
	w := postJSON(t, s.Handler(), "/map/batch", batch)
	if w.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", w.Code, w.Body.String())
	}
	var br BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &br); err != nil {
		t.Fatal(err)
	}
	return br
}

// TestFleetWorkerKilledMidBatch: a worker that dies (connection aborts)
// after serving two requests. Retries and the surviving worker keep the
// batch byte-identical to local.
func TestFleetWorkerKilledMidBatch(t *testing.T) {
	dying, _ := wrapWorker(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n > 2 {
			panic(http.ErrAbortHandler) // server dies mid-batch
		}
		return false
	})
	healthy, _ := wrapWorker(t, func(int64, http.ResponseWriter, *http.Request) bool { return false })
	coord, local := fleetOverWorkers(t, -1, dying.URL, healthy.URL)
	defer fleetGuard(t)()
	batch := testBatch()
	requireSameOutcomes(t, "killed-mid-batch",
		batchViaHandler(t, coord, batch), batchViaHandler(t, local, batch))
}

// TestFleetConeShardLost: cone-wise dispatch with one worker aborting
// every /map/cones call — the lost shard's cones are solved during
// assembly and the netlist still matches local byte-for-byte.
func TestFleetConeShardLost(t *testing.T) {
	dead, _ := wrapWorker(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		panic(http.ErrAbortHandler)
	})
	healthy, _ := wrapWorker(t, func(int64, http.ResponseWriter, *http.Request) bool { return false })
	coord, local := fleetOverWorkers(t, -1, dead.URL, healthy.URL)
	defer fleetGuard(t)()
	single := BatchRequest{
		Defaults: MapRequest{Format: "eqn", Library: "LSI9K"},
		Designs:  []MapRequest{{Name: "single", Design: slowEqn(4)}},
	}
	requireSameOutcomes(t, "cone-shard-lost",
		batchViaHandler(t, coord, single), batchViaHandler(t, local, single))
}

// TestFleetHedgesStraggler: the first request into the fleet stalls well
// past the hedging threshold; the hedge wins on the other worker and the
// results stay byte-identical.
func TestFleetHedgesStraggler(t *testing.T) {
	stall := func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n == 1 {
			// Drain the body so the server's background read can detect the
			// client abort and cancel r.Context().
			_, _ = io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(10 * time.Second):
			case <-r.Context().Done(): // cancelled when the hedge wins
			}
			panic(http.ErrAbortHandler)
		}
		return false
	}
	slow, _ := wrapWorker(t, stall)
	fast, _ := wrapWorker(t, func(int64, http.ResponseWriter, *http.Request) bool { return false })
	coord, local := fleetOverWorkers(t, 50*time.Millisecond, slow.URL, fast.URL)
	defer fleetGuard(t)()
	batch := BatchRequest{
		Defaults: MapRequest{Format: "eqn", Library: "LSI9K"},
		Designs: []MapRequest{
			{Name: "a", Design: fig3Eqn},
			{Name: "b", Design: slowEqn(2)},
		},
	}
	start := time.Now()
	got := batchViaHandler(t, coord, batch)
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("batch waited %v on the straggler — hedging did not fire", elapsed)
	}
	requireSameOutcomes(t, "hedged", got, batchViaHandler(t, local, batch))
	if hedges := coord.Registry().Counter("fleet_hedges_total").Value(); hedges == 0 {
		t.Fatal("no hedges recorded")
	}
}

// TestFleetCorruptBody: a worker answering 200 with garbage fails byte
// validation and the job retries elsewhere; the caller never sees the
// corruption.
func TestFleetCorruptBody(t *testing.T) {
	corrupting, _ := wrapWorker(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n%2 == 1 { // every odd request: valid status, corrupt payload
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, "}{ not json")
			return true
		}
		return false
	})
	healthy, _ := wrapWorker(t, func(int64, http.ResponseWriter, *http.Request) bool { return false })
	coord, local := fleetOverWorkers(t, -1, corrupting.URL, healthy.URL)
	defer fleetGuard(t)()
	batch := testBatch()
	requireSameOutcomes(t, "corrupt-body",
		batchViaHandler(t, coord, batch), batchViaHandler(t, local, batch))
}

// TestConeShardEndpoint: the worker-side /map/cones contract — identity
// pair present, shard bounds enforced, solutions decodable.
func TestConeShardEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	req := ConeShardRequest{
		MapRequest: MapRequest{Format: "eqn", Library: "LSI9K", Design: slowEqn(3)},
		ShardIndex: 0, ShardCount: 2,
	}
	w := postJSON(t, s.Handler(), "/map/cones", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp ConeShardResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.LibFP == "" || resp.OptHash == "" || resp.Cones == 0 || resp.Solved == 0 {
		t.Fatalf("incomplete cone response: %+v", resp)
	}
	if len(resp.Solutions) == 0 {
		t.Fatal("no solutions returned")
	}
	req.ShardIndex = 5
	if w := postJSON(t, s.Handler(), "/map/cones", req); w.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range shard: status %d, want 400", w.Code)
	}
}

// TestRetryAfterComputedFromLoad: the 503 hint is queue depth × rolling
// p50 across the concurrency lanes, clamped to [1, MaxTimeout] — not the
// old constant 1.
func TestRetryAfterComputedFromLoad(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 2, MaxTimeout: 90 * time.Second})

	// Cold window: no p50 yet → the hint degrades to 1.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("cold retryAfterSeconds = %d, want 1", got)
	}

	// Warm: ~4s p50, 6 requests deep over 2 lanes → at least ~12s.
	for i := 0; i < 8; i++ {
		s.roll.request.Observe(4.0)
	}
	s.queued.Add(4)
	s.inflight.Add(2)
	defer func() { s.queued.Add(-4); s.inflight.Add(-2) }()
	got := s.retryAfterSeconds()
	if got < 12 || got > 90 {
		t.Fatalf("retryAfterSeconds = %d, want within [12, 90]", got)
	}

	// Clamp: a tiny MaxTimeout caps the hint.
	s2 := newTestServer(t, Config{MaxConcurrent: 1, MaxTimeout: 3 * time.Second})
	for i := 0; i < 8; i++ {
		s2.roll.request.Observe(60.0)
	}
	s2.queued.Add(10)
	defer s2.queued.Add(-10)
	if got := s2.retryAfterSeconds(); got != 3 {
		t.Fatalf("clamped retryAfterSeconds = %d, want 3", got)
	}

	// The handler path serves the computed value on a real rejection.
	w := httptest.NewRecorder()
	s2.writeBusy(w, "r-test-1", errBusy)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("writeBusy status %d", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3", ra)
	}
}

// TestStreamBatchLocal: the NDJSON contract on a plain (non-fleet)
// server — indices complete, trailer last, results equal to buffered.
func TestStreamBatchLocal(t *testing.T) {
	s := newTestServer(t, Config{})
	batch := testBatch()
	raw, _ := json.Marshal(batch)

	req := httptest.NewRequest(http.MethodPost, "/map/batch?stream=1", bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", w.Code, w.Body.String())
	}
	streamed := decodeStream(t, &http.Response{
		Header: w.Header(), Body: io.NopCloser(strings.NewReader(w.Body.String())),
	}, len(batch.Designs))
	buffered := batchViaHandler(t, s, batch)
	requireSameOutcomes(t, "local-stream", streamed, buffered)
}
