package server

// In-process fleet harness: a coordinator, its workers and a plain
// single-process twin, all inside one process on loopback listeners.
// This is the determinism rig the fleet diffcheck axis, gfmfuzz -fleet
// and the server's own fault-injection tests share: map the same request
// through CoordinatorURL and LocalURL and the responses' netlists must
// be byte-identical.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
)

// InProcessFleet is a running in-process fleet. Close shuts every
// listener down.
type InProcessFleet struct {
	// CoordinatorURL fronts the fleet (FleetWorkers set to WorkerURLs).
	CoordinatorURL string
	// WorkerURLs are the plain worker servers, in fleet index order.
	WorkerURLs []string
	// LocalURL is a single-process server with the same configuration and
	// no fleet — the byte-identity baseline.
	LocalURL string
	// Coordinator exposes the coordinator server (e.g. its Registry).
	Coordinator *Server

	closers []func()
}

// StartInProcessFleet boots n workers, one coordinator fronting them and
// one plain local twin, all from cfg (fleet fields in cfg are ignored;
// AccessLog defaults to silent — harness traffic would drown a real log).
func StartInProcessFleet(n int, cfg Config) (*InProcessFleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("server: fleet needs at least 1 worker, got %d", n)
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = io.Discard
	}
	f := &InProcessFleet{}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	plain := cfg
	plain.FleetWorkers = nil
	plain.Registry = nil // each server gets its own registry
	for i := 0; i < n; i++ {
		_, url, err := f.serve(plain)
		if err != nil {
			return nil, err
		}
		f.WorkerURLs = append(f.WorkerURLs, url)
	}
	if _, url, err := f.serve(plain); err != nil {
		return nil, err
	} else {
		f.LocalURL = url
	}
	coord := cfg
	coord.Registry = nil
	coord.FleetWorkers = f.WorkerURLs
	srv, url, err := f.serve(coord)
	if err != nil {
		return nil, err
	}
	f.Coordinator = srv
	f.CoordinatorURL = url
	ok = true
	return f, nil
}

func (f *InProcessFleet) serve(cfg Config) (*Server, string, error) {
	srv, err := New(cfg)
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	f.closers = append(f.closers, func() { _ = hs.Close() })
	return srv, "http://" + ln.Addr().String(), nil
}

// MapBoth posts the same single-design batch to the coordinator and to
// the local twin and returns both outcomes. This is the fleet diffcheck
// axis's primitive: a one-design batch on a multi-worker fleet takes the
// cone-sharded path, so MapBoth exercises shard dispatch, hedging and
// failure recovery end to end, and the two results must agree
// byte-for-byte.
func (f *InProcessFleet) MapBoth(req MapRequest) (viaFleet, viaLocal BatchResult, err error) {
	if viaFleet, err = postOneBatch(f.CoordinatorURL, req); err != nil {
		return
	}
	viaLocal, err = postOneBatch(f.LocalURL, req)
	return
}

func postOneBatch(base string, req MapRequest) (BatchResult, error) {
	body, err := json.Marshal(BatchRequest{Designs: []MapRequest{req}})
	if err != nil {
		return BatchResult{}, err
	}
	resp, err := http.Post(base+"/map/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return BatchResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return BatchResult{}, fmt.Errorf("batch status %d: %s", resp.StatusCode, msg)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return BatchResult{}, err
	}
	if len(br.Results) != 1 {
		return BatchResult{}, fmt.Errorf("batch returned %d results, want 1", len(br.Results))
	}
	return br.Results[0], nil
}

// Close stops every server in the harness.
func (f *InProcessFleet) Close() {
	for i := len(f.closers) - 1; i >= 0; i-- {
		f.closers[i]()
	}
	f.closers = nil
}
