package server

// Tests for the service-observability layer: request-ID correlation
// across access log, trace spans, headers and error bodies; the /statusz
// rolling digests; Prometheus exposition on /metrics; the /healthz
// readiness detail; and the zero-allocation access-log fast path.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gfmap/internal/obs"
)

// syncBuffer lets tests collect log output written from handler
// goroutines without racing the assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// One request ID, visible everywhere: response header, response body,
// the access-log line, and every pipeline trace span.
func TestRequestIDCorrelation(t *testing.T) {
	var logBuf bytes.Buffer
	tracer := obs.NewTracer(0)
	s := newTestServer(t, Config{
		AccessLog: &syncBuffer{buf: &logBuf},
		Tracer:    tracer,
	})
	w := postJSON(t, s.Handler(), "/map", MapRequest{
		Name: "fig3", Format: "eqn", Design: fig3Eqn, Library: "LSI9K",
	})
	if w.Code != http.StatusOK {
		t.Fatalf("map failed: %d %s", w.Code, w.Body.String())
	}

	rid := w.Header().Get(RequestIDHeader)
	if rid == "" {
		t.Fatal("response has no X-Request-ID header")
	}
	resp := decodeMapResponse(t, w)
	if resp.RequestID != rid {
		t.Errorf("body request_id %q != header %q", resp.RequestID, rid)
	}

	// The access-log line carries the same ID plus the design identity
	// filled in after parsing.
	var accessLine map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, line)
		}
		if m["msg"] == "request" && m["request_id"] == rid {
			accessLine, found = m, true
		}
	}
	if !found {
		t.Fatalf("no access-log line for %s:\n%s", rid, logBuf.String())
	}
	if accessLine["status"] != float64(200) || accessLine["path"] != "/map" ||
		accessLine["design"] != "fig3" || accessLine["library"] != "LSI9K" {
		t.Errorf("access line fields: %v", accessLine)
	}
	if ms, ok := accessLine["elapsed_ms"].(float64); !ok || ms <= 0 {
		t.Errorf("access line elapsed_ms = %v", accessLine["elapsed_ms"])
	}

	// Every phase span the tracer recorded is stamped with the same ID.
	var traceBuf bytes.Buffer
	if err := tracer.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	spans, stamped := 0, 0
	for _, line := range strings.Split(strings.TrimSpace(traceBuf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		if m["ph"] != "span" {
			continue
		}
		spans++
		if attrs, _ := m["attrs"].(map[string]any); attrs != nil && attrs["request_id"] == rid {
			stamped++
		}
	}
	if spans == 0 {
		t.Fatal("tracer recorded no spans")
	}
	if stamped == 0 {
		t.Fatalf("no trace span carries request_id %s:\n%s", rid, traceBuf.String())
	}
}

// A well-formed client-supplied X-Request-ID is honoured; a malformed
// one is replaced with a server-minted ID.
func TestRequestIDClientSupplied(t *testing.T) {
	s := newTestServer(t, Config{})
	do := func(id string) string {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		if id != "" {
			req.Header.Set(RequestIDHeader, id)
		}
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Header().Get(RequestIDHeader)
	}
	if got := do("proxy-abc.123"); got != "proxy-abc.123" {
		t.Errorf("valid client ID replaced: %q", got)
	}
	if got := do("bad id\nwith newline"); got == "bad id\nwith newline" || got == "" {
		t.Errorf("malformed client ID not replaced: %q", got)
	}
	if got := do(strings.Repeat("x", 65)); len(got) > 64 {
		t.Errorf("oversized client ID kept: %q", got)
	}
	if a, b := do(""), do(""); a == b || a == "" {
		t.Errorf("minted IDs not unique: %q %q", a, b)
	}
}

// Error responses carry the request ID so a failed call is still
// correlatable from the body alone.
func TestErrorBodyCarriesRequestID(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/map", MapRequest{Format: "vhdl", Design: "x"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d", w.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.RequestID == "" || eb.RequestID != w.Header().Get(RequestIDHeader) {
		t.Errorf("error body request_id %q, header %q", eb.RequestID, w.Header().Get(RequestIDHeader))
	}
}

// After serving load, /statusz reports nonzero rolling quantiles for the
// request and pipeline stages, admission bounds, and cache hit rates.
func TestStatusz(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 2})
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/map", MapRequest{Format: "eqn", Design: fig3Eqn}); w.Code != http.StatusOK {
			t.Fatalf("warm-up map %d failed: %d %s", i, w.Code, w.Body.String())
		}
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statusz: %d %s", w.Code, w.Body.String())
	}
	var st StatuszResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("statusz not JSON: %v\n%s", err, w.Body.String())
	}
	req := st.Stages["request"]
	if req.Count < 3 {
		t.Errorf("rolling request count = %d, want >= 3", req.Count)
	}
	if req.P50MS <= 0 || req.P99MS <= 0 || req.P99MS < req.P50MS {
		t.Errorf("rolling request quantiles p50=%g p99=%g", req.P50MS, req.P99MS)
	}
	if cover := st.Stages["cover"]; cover.Count < 3 || cover.P50MS <= 0 {
		t.Errorf("rolling cover stage: %+v", cover)
	}
	if st.Admission.MaxConcurrent != 2 || st.Admission.MaxQueue != 4 {
		t.Errorf("admission bounds: %+v", st.Admission)
	}
	if st.WindowSeconds != 60 {
		t.Errorf("window = %g, want 60", st.WindowSeconds)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime = %g", st.UptimeSeconds)
	}
	if st.HazardCache.Hits+st.HazardCache.Misses == 0 {
		t.Errorf("hazard cache saw no traffic: %+v", st.HazardCache)
	}
	// The only live request is the /statusz scrape itself.
	for _, row := range st.Inflight {
		if row.Path != "/statusz" {
			t.Errorf("idle server reports in-flight request: %+v", row)
		}
	}
	if st.Store.Enabled {
		t.Errorf("store reported enabled without one configured")
	}
}

// A long-running request appears in /statusz's in-flight table with its
// request ID, and disappears once it completes.
func TestStatuszInflightTable(t *testing.T) {
	s := newTestServer(t, Config{})
	release := make(chan struct{})
	h := s.instrument(s.protect(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.WriteHeader(http.StatusNoContent)
	}))
	done := make(chan string, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/map", strings.NewReader(""))
		req.Header.Set(RequestIDHeader, "slow-req-1")
		w := httptest.NewRecorder()
		h(w, req)
		done <- w.Header().Get(RequestIDHeader)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statusz", nil))
		var st StatuszResponse
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		var row *InflightInfo
		for i := range st.Inflight {
			if st.Inflight[i].RequestID == "slow-req-1" {
				row = &st.Inflight[i]
			}
		}
		if row != nil {
			if row.Method != http.MethodPost || row.Path != "/map" {
				t.Errorf("in-flight row: %+v", *row)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never appeared in the in-flight table")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	if got := <-done; got != "slow-req-1" {
		t.Errorf("slow request header ID %q", got)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	var st StatuszResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	for _, row := range st.Inflight {
		if row.RequestID == "slow-req-1" {
			t.Errorf("completed request still in the table: %+v", row)
		}
	}
}

// /metrics negotiates Prometheus text exposition and the output passes
// the package's promtool-style linter.
func TestMetricsPrometheus(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if w := postJSON(t, h, "/map", MapRequest{Format: "eqn", Design: fig3Eqn}); w.Code != http.StatusOK {
		t.Fatalf("warm-up map failed: %d %s", w.Code, w.Body.String())
	}

	for _, tc := range []struct {
		name   string
		target string
		accept string
	}{
		{"query-param", "/metrics?format=prom", ""},
		{"accept-header", "/metrics", "text/plain"},
	} {
		req := httptest.NewRequest(http.MethodGet, tc.target, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("%s: content-type %q", tc.name, ct)
		}
		body := w.Body.Bytes()
		if issues := obs.LintPrometheus(body); len(issues) != 0 {
			t.Errorf("%s: exposition fails lint:\n%s\npayload:\n%s",
				tc.name, strings.Join(issues, "\n"), body)
		}
		for _, want := range []string{
			"# TYPE " + MetricRequests + " counter",
			"# TYPE " + MetricRequestSeconds + " histogram",
			"# TYPE " + RollingRequestSeconds + " summary",
			RollingCoverSeconds + `{quantile="0.99"}`,
		} {
			if !strings.Contains(string(body), want) {
				t.Errorf("%s: exposition missing %q", tc.name, want)
			}
		}
	}

	// No Accept header, no format: the JSON snapshot (back-compat).
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default /metrics content-type %q", ct)
	}
	if !json.Valid(w.Body.Bytes()) {
		t.Errorf("default /metrics is not JSON")
	}
}

// /healthz keeps the bare 200 + "ok" liveness contract and adds the
// readiness detail.
func TestHealthzDetail(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 3, MaxQueue: 5})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz contract broken: %d %s", w.Code, w.Body.String())
	}
	var hz HealthzResponse
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.LibraryCount != 2 || len(hz.Libraries) != 2 {
		t.Errorf("library detail: %+v", hz)
	}
	if hz.MaxConcurrent != 3 || hz.QueueCapacity != 8 {
		t.Errorf("capacity detail: %+v", hz)
	}
	if hz.UptimeSeconds < 0 {
		t.Errorf("uptime: %g", hz.UptimeSeconds)
	}
	if hz.StoreEnabled {
		t.Errorf("store enabled without one configured")
	}
}

// The access-log emit path must not allocate once the logger's buffer
// pool is warm: one pooled buffer, appended in place, one Write.
func TestAccessLogZeroAllocs(t *testing.T) {
	s := newTestServer(t, Config{AccessLog: io.Discard})
	s.logRequest("r-warm-0", "POST", "/map", 200, 512, time.Millisecond, "fig3", "LSI9K")
	allocs := testing.AllocsPerRun(1000, func() {
		s.logRequest("r-abcd1234-2a", "POST", "/map", 200, 4096, 1500*time.Microsecond, "fig3", "LSI9K")
	})
	if allocs != 0 {
		t.Fatalf("access-log fast path allocates: %v allocs/op", allocs)
	}
}

func BenchmarkAccessLogLine(b *testing.B) {
	s, err := New(Config{Libraries: []string{"LSI9K"}, AccessLog: io.Discard})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.logRequest("r-abcd1234-2a", "POST", "/map", 200, 4096, 1500*time.Microsecond, "fig3", "LSI9K")
	}
}
