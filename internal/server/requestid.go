package server

// Request identity: every request is assigned an ID at admission (or
// keeps a well-formed client-supplied one), which is echoed in the
// X-Request-ID response header, carried in every access-log line and
// error body, stamped onto the mapper's trace spans, and attached as a
// pprof label — one handle to follow a request through every layer.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"sync/atomic"
)

// RequestIDHeader is the request/response header carrying the request ID.
const RequestIDHeader = "X-Request-ID"

// ridPrefix makes IDs from concurrently running processes distinct; the
// counter makes them unique and ordered within one process.
var (
	ridPrefix  = newRIDPrefix()
	ridCounter atomic.Uint64
)

func newRIDPrefix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}

// newRequestID mints a process-unique request ID.
func newRequestID() string {
	return "r-" + ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

// validRequestID accepts client-supplied IDs that are short and safe to
// echo into headers and JSON logs.
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// requestIDFor keeps a valid client-supplied X-Request-ID (so upstream
// proxies can pre-assign correlation IDs) and mints one otherwise.
func requestIDFor(r *http.Request) string {
	if id := r.Header.Get(RequestIDHeader); validRequestID(id) {
		return id
	}
	return newRequestID()
}

type ridKey struct{}

// withRequestID stores the request ID in the context.
func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestIDFromContext returns the request ID assigned at admission, or
// "" outside a request.
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}
