// Package server implements asyncmapd's HTTP mapping service: a
// long-lived, concurrency-limited front end over core.Map.
//
// Design designs (BLIF or eqn text) are mapped against libraries that are
// preloaded and hazard-annotated once at startup, so no request pays the
// library-initialisation cost. Every request runs under a deadline and the
// request's own context, threaded through core.Options.Ctx into the
// covering DP: a cancelled or timed-out request aborts the pipeline at the
// next cone/cut/binding boundary and releases its worker slot without
// leaking goroutines. Admission is a fixed-size semaphore with a bounded
// wait queue — requests beyond the queue are rejected immediately with
// 503 and a Retry-After hint (backpressure, not collapse). A panicking
// request is isolated: it answers 500 and the process keeps serving.
//
// See docs/SERVING.md for the full API and operational contract.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gfmap/internal/blif"
	"gfmap/internal/core"
	"gfmap/internal/eqn"
	"gfmap/internal/hazcache"
	"gfmap/internal/library"
	"gfmap/internal/mapstore"
	"gfmap/internal/network"
	"gfmap/internal/obs"
	"gfmap/internal/synth"
)

// Config tunes a Server. The zero value is a usable development setup.
type Config struct {
	// Libraries names the built-in libraries to preload and annotate at
	// startup. Empty means every built-in (library.BuiltinNames).
	Libraries []string
	// MaxConcurrent bounds how many mapping requests run simultaneously;
	// 0 means 4. Each request may itself use core's per-cone worker pool.
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for a slot
	// beyond the MaxConcurrent running ones; 0 means 2*MaxConcurrent.
	// Requests past the queue are rejected with 503 (backpressure).
	MaxQueue int
	// DefaultTimeout is the per-request mapping deadline when the client
	// does not ask for one; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; 0 means 5m.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies; 0 means 8 MiB.
	MaxBodyBytes int64
	// MapWorkers is core.Options.Workers for every request; 0 means one
	// per CPU (shared fairly by the admission limiter above).
	MapWorkers int
	// DisableArenas turns off the covering DP's per-worker arena
	// allocator for every request (core.Options.DisableArenas). Results
	// are byte-identical either way; the knob exists so a service
	// operator can A/B the allocation behaviour under live load.
	DisableArenas bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Registry receives the server's and the mapper's metrics; nil means
	// a fresh private registry (exposed at /metrics either way).
	Registry *obs.Registry
	// HazardCache is the cross-request hazard-analysis cache; nil means
	// the process-wide hazcache.Shared(). Requests share it by design:
	// one request's analyses warm the next one's matching filter.
	HazardCache *hazcache.Cache
	// Store is the persistent content-addressed cone-solution store
	// shared by every request; nil disables it. The store is owned by
	// the caller (typically opened from a -store path in cmd/asyncmapd
	// and closed on shutdown); its counters appear under /metrics.
	Store *mapstore.Store
	// AccessLog receives one structured JSON line per request (and the
	// server's panic logs); nil means os.Stderr. Pass io.Discard to
	// silence.
	AccessLog io.Writer
	// Tracer, when non-nil, receives the mapper's per-phase spans for
	// every request, each stamped with the request's ID.
	Tracer *obs.Tracer
	// StatusWindow is the rolling window behind /statusz's per-stage
	// latency digests; 0 means 60s.
	StatusWindow time.Duration
	// FleetWorkers lists worker asyncmapd base URLs. Non-empty switches
	// this server into coordinator mode: /map/batch work is dispatched
	// across the fleet (design-wise; cone-wise for a single-design batch)
	// with hedged retries, and assembled locally to the byte-identical
	// netlist a single process would produce. Workers are plain asyncmapd
	// instances — nothing fleet-specific runs on them.
	FleetWorkers []string
	// FleetHedgeAfter is the straggler threshold before a shard is hedged
	// onto another worker; 0 means 2s, negative disables hedging.
	FleetHedgeAfter time.Duration
	// FleetMaxAttempts bounds remote attempts per shard before the
	// coordinator falls back to mapping locally; 0 means 3.
	FleetMaxAttempts int
	// FleetPerWorker is the number of concurrent requests per worker;
	// 0 means 4.
	FleetPerWorker int
	// FleetClient overrides the coordinator's HTTP client (tests).
	FleetClient *http.Client
}

func (c Config) withDefaults() Config {
	if len(c.Libraries) == 0 {
		c.Libraries = append([]string(nil), library.BuiltinNames...)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.HazardCache == nil {
		c.HazardCache = hazcache.Shared()
	}
	if c.AccessLog == nil {
		c.AccessLog = os.Stderr
	}
	if c.StatusWindow <= 0 {
		c.StatusWindow = time.Minute
	}
	return c
}

// Server metric names, published into the configured registry alongside
// the mapper's own map_* metrics.
const (
	MetricRequests       = "server_requests_total"
	MetricDesigns        = "server_designs_mapped_total"
	MetricErrors         = "server_errors_total"
	MetricRejected       = "server_rejected_total"
	MetricTimeouts       = "server_timeouts_total"
	MetricCanceled       = "server_canceled_total"
	MetricPanics         = "server_panics_total"
	MetricInflight       = "server_inflight"
	MetricQueued         = "server_queued"
	MetricRequestSeconds = "server_request_seconds"
)

// Server is the HTTP mapping service. Create one with New and mount
// Handler on an http.Server.
type Server struct {
	cfg    Config
	libs   map[string]*library.Library
	order  []string // library names in configured order (order[0] is the default)
	reg    *obs.Registry
	mux    *http.ServeMux
	logger *obs.Logger
	start  time.Time
	roll   rollingSet

	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64

	infMu    sync.Mutex
	infTable map[*inflightEntry]struct{}

	fleet *fleetState // nil unless FleetWorkers configured

	requests   *obs.Counter
	designs    *obs.Counter
	errorsC    *obs.Counter
	rejected   *obs.Counter
	timeouts   *obs.Counter
	canceled   *obs.Counter
	panics     *obs.Counter
	reqSeconds *obs.Histogram
}

// New preloads and annotates the configured libraries and builds the
// service. Annotation happens here, once — never on a request path.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		libs:     make(map[string]*library.Library, len(cfg.Libraries)),
		reg:      cfg.Registry,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		logger:   obs.NewLogger(cfg.AccessLog),
		start:    time.Now(),
		infTable: make(map[*inflightEntry]struct{}),
	}
	s.roll = newRollingSet(s.reg, cfg.StatusWindow)
	for _, name := range cfg.Libraries {
		lib, err := library.Get(name) // cached + annotated
		if err != nil {
			return nil, fmt.Errorf("server: preload library %s: %w", name, err)
		}
		s.libs[name] = lib
		s.order = append(s.order, name)
	}
	s.requests = s.reg.Counter(MetricRequests)
	s.designs = s.reg.Counter(MetricDesigns)
	s.errorsC = s.reg.Counter(MetricErrors)
	s.rejected = s.reg.Counter(MetricRejected)
	s.timeouts = s.reg.Counter(MetricTimeouts)
	s.canceled = s.reg.Counter(MetricCanceled)
	s.panics = s.reg.Counter(MetricPanics)
	s.reqSeconds = s.reg.Histogram(MetricRequestSeconds, obs.ExpBuckets(1e-3, 4, 10))

	if len(cfg.FleetWorkers) > 0 {
		fs, err := newFleetState(s)
		if err != nil {
			return nil, err
		}
		s.fleet = fs
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/map", s.instrument(s.protect(s.handleMap)))
	s.mux.HandleFunc("/synth", s.instrument(s.protect(s.handleSynth)))
	s.mux.HandleFunc("/map/batch", s.instrument(s.protect(s.handleBatch)))
	s.mux.HandleFunc("/map/cones", s.instrument(s.protect(s.handleMapCones)))
	s.mux.HandleFunc("/healthz", s.instrument(s.protect(s.handleHealthz)))
	s.mux.HandleFunc("/metrics", s.instrument(s.protect(s.handleMetrics)))
	s.mux.HandleFunc("/statusz", s.instrument(s.protect(s.handleStatusz)))
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry the server publishes into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// protect wraps a handler with per-request panic isolation: a panic
// answers 500 and is counted, and the process keeps serving. The
// recovery is logged as a structured line carrying the request ID so it
// correlates with the access log and trace spans.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Inc()
				s.errorsC.Inc()
				s.logger.Error("panic recovered").
					Str("request_id", RequestIDFromContext(r.Context())).
					Str("method", r.Method).
					Str("path", r.URL.Path).
					Str("panic", fmt.Sprint(rec)).
					Str("stack", string(debug.Stack())).
					Send()
				writeError(w, http.StatusInternalServerError, RequestIDFromContext(r.Context()),
					fmt.Errorf("internal panic: %v", rec))
			}
		}()
		h(w, r)
	}
}

// statusWriter captures the response status and byte count for the
// access log without changing the handler-visible contract.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument is the outermost per-request middleware: it assigns the
// request ID (honouring a well-formed client-supplied one), echoes it in
// the X-Request-ID response header before the handler runs, registers
// the request in the in-flight table, and on completion emits one
// structured access-log line and feeds the rolling request-latency
// window. It wraps protect, so panic responses are logged too.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := requestIDFor(r)
		ent := s.track(rid, r)
		ctx := withEntry(withRequestID(r.Context(), rid), ent)
		r = r.WithContext(ctx)
		w.Header().Set(RequestIDHeader, rid)
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		defer func() {
			elapsed := time.Since(begin)
			s.untrack(ent)
			s.roll.request.Observe(elapsed.Seconds())
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			design, lib := ent.designLibrary()
			s.logRequest(rid, r.Method, r.URL.Path, status, sw.bytes, elapsed, design, lib)
		}()
		h(sw, r)
	}
}

// logRequest emits the access-log line. It is the steady-state logging
// fast path: with the line buffer pooled, it must not allocate (pinned
// by BenchmarkAccessLogLine / TestAccessLogZeroAllocs).
func (s *Server) logRequest(rid, method, path string, status int, bytes int64, elapsed time.Duration, design, library string) {
	var line *obs.LogLine
	switch {
	case status >= 500:
		line = s.logger.Error("request")
	case status >= 400:
		line = s.logger.Warn("request")
	default:
		line = s.logger.Info("request")
	}
	line.Str("request_id", rid).
		Str("method", method).
		Str("path", path).
		Int("status", int64(status)).
		Int("bytes_out", bytes).
		Float("elapsed_ms", float64(elapsed)/float64(time.Millisecond))
	if design != "" {
		line.Str("design", design)
	}
	if library != "" {
		line.Str("library", library)
	}
	line.Send()
}

// acquire admits a request into the mapping section, waiting for a free
// slot up to the queue bound. It returns a release function, or an error
// when the queue is full (errBusy) or the caller's context ended first.
var errBusy = errors.New("server at capacity")

func (s *Server) acquire(ctx context.Context) (func(), error) {
	if q := s.queued.Add(1); q > int64(s.cfg.MaxConcurrent+s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, errBusy
	}
	defer s.queued.Add(-1)
	begin := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.roll.wait.Observe(time.Since(begin).Seconds())
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.sem
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// MapRequest is one design to map. In a raw (non-JSON) POST to /map the
// body is the design text and these fields come from query parameters.
type MapRequest struct {
	// Name labels the design in the response; defaults to the format's
	// model name fallback.
	Name string `json:"name,omitempty"`
	// Format of Design: "blif" (default) or "eqn".
	Format string `json:"format,omitempty"`
	// Design is the design source text.
	Design string `json:"design"`
	// Library is a preloaded library name; default is the server's first
	// configured library.
	Library string `json:"library,omitempty"`
	// Mode is "async" (default) or "sync".
	Mode string `json:"mode,omitempty"`
	// Objective is "area" (default) or "delay".
	Objective string `json:"objective,omitempty"`
	MaxDepth  int    `json:"max_depth,omitempty"`
	MaxLeaves int    `json:"max_leaves,omitempty"`
	MaxBurst  int    `json:"max_burst,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at the server's MaxTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Output selects the rendered payloads: "netlist" (default),
	// "verilog", "both" or "none" (statistics only).
	Output string `json:"output,omitempty"`
}

// MapResponse is the result of mapping one design.
type MapResponse struct {
	// RequestID is the correlation ID assigned at admission (also in the
	// X-Request-ID response header, the access log and trace spans).
	RequestID string     `json:"request_id,omitempty"`
	Name      string     `json:"name"`
	Library   string     `json:"library"`
	Mode      string     `json:"mode"`
	Gates     int        `json:"gates"`
	Area      float64    `json:"area"`
	Delay     float64    `json:"delay"`
	Netlist   string     `json:"netlist,omitempty"`
	Verilog   string     `json:"verilog,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
	Stats     core.Stats `json:"stats"`
}

// BatchRequest maps several designs in one call. Defaults apply to every
// design unless the design overrides the field itself.
type BatchRequest struct {
	Defaults MapRequest   `json:"defaults"`
	Designs  []MapRequest `json:"designs"`
}

// BatchResult is one design's outcome inside a batch: a result or an
// error, never both. Failures are isolated per design.
type BatchResult struct {
	*MapResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse preserves request order.
type BatchResponse struct {
	Results   []BatchResult `json:"results"`
	Succeeded int           `json:"succeeded"`
	Failed    int           `json:"failed"`
}

type errorBody struct {
	Error string `json:"error"`
	// RequestID echoes the request's correlation ID so a client holding
	// only the error body can still find the matching access-log line
	// and trace spans.
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, status int, rid string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), RequestID: rid})
}

// writeBusy rejects with 503 and a Retry-After hint computed from live
// load, not a constant: the time for the current backlog to drain at the
// observed service rate. A fixed "1" taught every rejected client to
// stampede back while the queue was still minutes deep.
func (s *Server) writeBusy(w http.ResponseWriter, rid string, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, http.StatusServiceUnavailable, rid, err)
}

// retryAfterSeconds estimates backlog drain time: (queued + running)
// requests at the rolling p50 service time across MaxConcurrent lanes,
// rounded up and clamped to [1, MaxTimeout] seconds. A cold window (no
// p50 yet) degrades to the old constant 1.
func (s *Server) retryAfterSeconds() int {
	p50 := s.roll.request.Snapshot().Quantile(0.50)
	depth := float64(s.queued.Load() + s.inflight.Load())
	secs := int(math.Ceil(depth * p50 / float64(s.cfg.MaxConcurrent)))
	if secs < 1 {
		secs = 1
	}
	if cap := int(s.cfg.MaxTimeout / time.Second); cap >= 1 && secs > cap {
		secs = cap
	}
	return secs
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// errBadInput marks request errors the client can fix: malformed design
// text, unknown enum values, unknown libraries. statusFor maps them to
// 400 rather than 422 — the design was never understood at all.
var errBadInput = errors.New("bad request")

func badInput(err error) error {
	return fmt.Errorf("%w: %w", errBadInput, err)
}

// statusFor maps a mapping error to an HTTP status: deadline → 504,
// client-side cancellation → 499 (nginx convention; the client is usually
// gone), malformed input → 400, a recovered mapper panic → 500, anything
// else → 422 (the design was understood but unmappable).
func (s *Server) statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Inc()
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.canceled.Inc()
		return 499
	case errors.Is(err, errBadInput), errors.Is(err, synth.ErrBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInternal):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFromContext(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, rid, errors.New("POST only"))
		return
	}
	s.requests.Inc()
	req, err := s.decodeMapRequest(r)
	if err != nil {
		s.errorsC.Inc()
		writeError(w, http.StatusBadRequest, rid, err)
		return
	}
	release, err := s.acquire(r.Context())
	if err != nil {
		s.errorsC.Inc()
		if errors.Is(err, errBusy) {
			s.rejected.Inc()
			s.writeBusy(w, rid, err)
		} else {
			writeError(w, 499, rid, err)
		}
		return
	}
	defer release()
	resp, err := s.mapOne(r.Context(), req)
	if err != nil {
		s.errorsC.Inc()
		writeError(w, s.statusFor(err), rid, err)
		return
	}
	writeJSON(w, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFromContext(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, rid, errors.New("POST only"))
		return
	}
	s.requests.Inc()
	var breq BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&breq); err != nil {
		s.errorsC.Inc()
		writeError(w, http.StatusBadRequest, rid, fmt.Errorf("bad batch request: %w", err))
		return
	}
	if len(breq.Designs) == 0 {
		s.errorsC.Inc()
		writeError(w, http.StatusBadRequest, rid, errors.New("batch has no designs"))
		return
	}
	// One admission slot covers the whole batch: designs run serially,
	// each under its own deadline, so a batch cannot starve single
	// requests of more than one worker slot. In fleet mode the slot covers
	// coordination and assembly; the workers apply their own admission.
	release, err := s.acquire(r.Context())
	if err != nil {
		s.errorsC.Inc()
		if errors.Is(err, errBusy) {
			s.rejected.Inc()
			s.writeBusy(w, rid, err)
		} else {
			writeError(w, 499, rid, err)
		}
		return
	}
	defer release()
	merged := make([]MapRequest, len(breq.Designs))
	for i, dreq := range breq.Designs {
		merged[i] = mergeRequest(breq.Defaults, dreq)
	}
	outcomes := s.batchOutcomes(r.Context(), rid, merged)
	if r.URL.Query().Get("stream") == "1" {
		s.streamBatch(w, outcomes, len(merged))
	} else {
		s.bufferBatch(w, outcomes, len(merged))
	}
}

// batchOutcome is one design's terminal result inside a batch, tagged
// with its position in the request.
type batchOutcome struct {
	index int
	resp  *MapResponse
	err   error
}

// batchOutcomes runs a batch and delivers exactly one outcome per design
// on the returned channel, in completion order, then closes it. Local
// mode maps serially (completion order == request order); fleet mode
// dispatches across the workers and finishes in whatever order they
// answer.
func (s *Server) batchOutcomes(ctx context.Context, rid string, designs []MapRequest) <-chan batchOutcome {
	if s.fleet != nil {
		return s.fleet.batchOutcomes(ctx, rid, designs)
	}
	out := make(chan batchOutcome, len(designs))
	go func() {
		defer close(out)
		for i, req := range designs {
			one, err := s.mapOne(ctx, req)
			if err != nil {
				// Per-design isolation: record and continue — unless the
				// whole request is gone, in which case finish fast.
				out <- batchOutcome{index: i, err: err}
				s.statusFor(err) // count timeout/cancel metrics
				if ctx.Err() != nil {
					for j := i + 1; j < len(designs); j++ {
						out <- batchOutcome{index: j, err: context.Canceled}
					}
					return
				}
				continue
			}
			out <- batchOutcome{index: i, resp: one}
		}
	}()
	return out
}

// bufferBatch collects every outcome and answers the classic in-order
// BatchResponse.
func (s *Server) bufferBatch(w http.ResponseWriter, outcomes <-chan batchOutcome, n int) {
	resp := BatchResponse{Results: make([]BatchResult, n)}
	for o := range outcomes {
		if o.err != nil {
			resp.Results[o.index] = BatchResult{Error: o.err.Error()}
			resp.Failed++
			continue
		}
		resp.Results[o.index] = BatchResult{MapResponse: o.resp}
		resp.Succeeded++
	}
	writeJSON(w, resp)
}

// streamItem is one NDJSON line of a streamed batch: a design's result
// (or error) stamped with its index in the request, emitted in
// completion order. The client reassembles by index.
type streamItem struct {
	Index  int          `json:"index"`
	Result *MapResponse `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// streamTrailer ends a streamed batch: always the last line, so a client
// seeing no trailer knows the stream was truncated.
type streamTrailer struct {
	Done      bool `json:"done"`
	Succeeded int  `json:"succeeded"`
	Failed    int  `json:"failed"`
}

// streamBatch writes outcomes as NDJSON as they complete (one line per
// design, then the trailer), flushing per line so a slow tail design
// does not hold earlier results hostage.
func (s *Server) streamBatch(w http.ResponseWriter, outcomes <-chan batchOutcome, n int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var trailer streamTrailer
	trailer.Done = true
	for o := range outcomes {
		item := streamItem{Index: o.index, Result: o.resp}
		if o.err != nil {
			item.Error = o.err.Error()
			trailer.Failed++
		} else {
			trailer.Succeeded++
		}
		_ = enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(trailer)
	if flusher != nil {
		flusher.Flush()
	}
}

// HealthzResponse is the /healthz readiness payload. Status is always
// "ok" with HTTP 200 while the process serves (the bare liveness
// contract); the rest is readiness detail for load balancers and humans:
// queue pressure against capacity, loaded libraries, store state.
type HealthzResponse struct {
	Status        string   `json:"status"`
	Libraries     []string `json:"libraries"`
	LibraryCount  int      `json:"library_count"`
	Inflight      int64    `json:"inflight"`
	Queued        int64    `json:"queued"`
	MaxConcurrent int      `json:"max_concurrent"`
	QueueCapacity int      `json:"queue_capacity"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	StoreEnabled  bool     `json:"store_enabled"`
	StoreEntries  int      `json:"store_entries,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthzResponse{
		Status:        "ok",
		Libraries:     s.order,
		LibraryCount:  len(s.order),
		Inflight:      s.inflight.Load(),
		Queued:        s.queued.Load(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		QueueCapacity: s.cfg.MaxConcurrent + s.cfg.MaxQueue,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.cfg.Store != nil {
		resp.StoreEnabled = true
		resp.StoreEntries = s.cfg.Store.Stats().Entries
	}
	writeJSON(w, resp)
}

// wantsPrometheus reports whether the client asked for Prometheus text
// exposition: an explicit format=prom[etheus] query parameter, or an
// Accept header preferring text/plain (what Prometheus scrapers send)
// with no explicit format override.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "":
		accept := r.Header.Get("Accept")
		return strings.Contains(accept, "text/plain") ||
			strings.Contains(accept, "openmetrics")
	default:
		return false
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge(MetricInflight).Set(float64(s.inflight.Load()))
	s.reg.Gauge(MetricQueued).Set(float64(s.queued.Load()))
	s.cfg.HazardCache.ExportMetrics(s.reg)
	s.cfg.Store.ExportMetrics(s.reg)
	snap := s.reg.Snapshot()
	switch {
	case wantsPrometheus(r):
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	case r.URL.Query().Get("format") == "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = io.WriteString(w, snap.Format(""))
	default:
		writeJSON(w, snap)
	}
}

// decodeMapRequest reads a /map body: JSON when the Content-Type says so,
// otherwise the raw design text with options in query parameters.
func (s *Server) decodeMapRequest(r *http.Request) (MapRequest, error) {
	var req MapRequest
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad request JSON: %w", err)
		}
		return req, nil
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return req, fmt.Errorf("read body: %w", err)
	}
	q := r.URL.Query()
	req = MapRequest{
		Name:      q.Get("name"),
		Format:    q.Get("format"),
		Design:    string(raw),
		Library:   q.Get("library"),
		Mode:      q.Get("mode"),
		Objective: q.Get("objective"),
		Output:    q.Get("output"),
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"max_depth", &req.MaxDepth}, {"max_leaves", &req.MaxLeaves},
		{"max_burst", &req.MaxBurst}, {"timeout_ms", &req.TimeoutMS},
	} {
		if v := q.Get(f.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad %s: %w", f.key, err)
			}
			*f.dst = n
		}
	}
	return req, nil
}

// mergeRequest overlays a batch design over the batch defaults: any field
// the design leaves at its zero value inherits the default.
func mergeRequest(def, d MapRequest) MapRequest {
	if d.Format == "" {
		d.Format = def.Format
	}
	if d.Library == "" {
		d.Library = def.Library
	}
	if d.Mode == "" {
		d.Mode = def.Mode
	}
	if d.Objective == "" {
		d.Objective = def.Objective
	}
	if d.Output == "" {
		d.Output = def.Output
	}
	if d.MaxDepth == 0 {
		d.MaxDepth = def.MaxDepth
	}
	if d.MaxLeaves == 0 {
		d.MaxLeaves = def.MaxLeaves
	}
	if d.MaxBurst == 0 {
		d.MaxBurst = def.MaxBurst
	}
	if d.TimeoutMS == 0 {
		d.TimeoutMS = def.TimeoutMS
	}
	return d
}

// timeoutFor resolves a request's mapping deadline.
func (s *Server) timeoutFor(req MapRequest) time.Duration {
	d := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// resolvedRequest is a MapRequest after parsing and validation: the
// design network, library and core options a mapping (or cone-shard) run
// needs. Shared by mapOne, the /map/cones worker endpoint and the fleet
// coordinator's assembly path so all three validate identically.
type resolvedRequest struct {
	libName string
	lib     *library.Library
	net     *network.Network
	opts    core.Options
	output  string
	timeout time.Duration
}

// resolveRequest parses and validates one design request. Every error is
// errBadInput — the request never reached the mapper.
func (s *Server) resolveRequest(ctx context.Context, req MapRequest) (*resolvedRequest, error) {
	if strings.TrimSpace(req.Design) == "" {
		return nil, badInput(errors.New("empty design"))
	}
	libName := req.Library
	if libName == "" {
		libName = s.order[0]
	}
	lib, ok := s.libs[libName]
	if !ok {
		return nil, badInput(fmt.Errorf("unknown library %q (loaded: %s)", libName, strings.Join(s.order, ", ")))
	}
	name := req.Name
	if name == "" {
		name = "design"
	}
	var (
		net *network.Network
		err error
	)
	switch req.Format {
	case "", "blif":
		net, err = blif.Parse(strings.NewReader(req.Design), name)
	case "eqn":
		net, err = eqn.ParseString(req.Design, name)
	default:
		return nil, badInput(fmt.Errorf("unknown design format %q (want blif or eqn)", req.Format))
	}
	if err != nil {
		return nil, badInput(fmt.Errorf("parse %s design: %w", orDefault(req.Format, "blif"), err))
	}
	entryFrom(ctx).setDesign(net.Name, libName)
	opts := core.Options{
		MaxDepth:      req.MaxDepth,
		MaxLeaves:     req.MaxLeaves,
		MaxBurst:      req.MaxBurst,
		Workers:       s.cfg.MapWorkers,
		DisableArenas: s.cfg.DisableArenas,
		HazardCache:   s.cfg.HazardCache,
		Store:         s.cfg.Store,
		Metrics:       s.reg,
		Tracer:        s.cfg.Tracer,
		RequestID:     RequestIDFromContext(ctx),
	}
	switch req.Mode {
	case "", "async":
		opts.Mode = core.Async
	case "sync":
		opts.Mode = core.Sync
	default:
		return nil, badInput(fmt.Errorf("unknown mode %q (want async or sync)", req.Mode))
	}
	switch req.Objective {
	case "", "area":
		opts.Objective = core.MinArea
	case "delay":
		opts.Objective = core.MinDelay
	default:
		return nil, badInput(fmt.Errorf("unknown objective %q (want area or delay)", req.Objective))
	}
	output := req.Output
	switch output {
	case "", "netlist":
		output = "netlist"
	case "verilog", "both", "none":
	default:
		return nil, badInput(fmt.Errorf("unknown output %q (want netlist, verilog, both or none)", output))
	}
	return &resolvedRequest{
		libName: libName,
		lib:     lib,
		net:     net,
		opts:    opts,
		output:  output,
		timeout: s.timeoutFor(req),
	}, nil
}

// mapOne parses, maps and renders a single design under its deadline.
// The caller must already hold an admission slot.
func (s *Server) mapOne(ctx context.Context, req MapRequest) (*MapResponse, error) {
	rr, err := s.resolveRequest(ctx, req)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithTimeout(ctx, rr.timeout)
	defer cancel()
	start := time.Now()
	res, err := core.MapContext(runCtx, rr.net, rr.lib, rr.opts)
	elapsed := time.Since(start)
	s.reqSeconds.Observe(elapsed.Seconds())
	if err != nil {
		return nil, err
	}
	return s.finishMapped(rr, res, elapsed)
}

// finishMapped turns a successful mapping into the wire response and
// feeds the per-stage observability windows — the shared back half of
// mapOne and the fleet coordinator's assembly.
func (s *Server) finishMapped(rr *resolvedRequest, res *core.Result, elapsed time.Duration) (*MapResponse, error) {
	s.designs.Inc()
	s.roll.decompose.Observe(res.Stats.DecomposeTime.Seconds())
	s.roll.partition.Observe(res.Stats.PartitionTime.Seconds())
	s.roll.cover.Observe(res.Stats.CoverTime.Seconds())
	s.roll.emit.Observe(res.Stats.EmitTime.Seconds())
	resp := &MapResponse{
		RequestID: rr.opts.RequestID,
		Name:      rr.net.Name,
		Library:   rr.libName,
		Mode:      rr.opts.Mode.String(),
		Gates:     res.Netlist.GateCount(),
		Area:      res.Area,
		Delay:     res.Delay,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		Stats:     res.Stats,
	}
	if rr.output == "netlist" || rr.output == "both" {
		resp.Netlist = res.Netlist.String()
	}
	if rr.output == "verilog" || rr.output == "both" {
		v, err := res.Netlist.VerilogString()
		if err != nil {
			return nil, err
		}
		resp.Verilog = v
	}
	return resp, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
