package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gfmap/internal/hazcache"
	"gfmap/internal/mapstore"
	"gfmap/internal/obs"
)

const (
	// The paper's Figure 3 carry function, in both accepted formats.
	fig3Eqn  = "INPUT(a,b,c)\nOUTPUT(f)\nf = a*b + a'*c + b*c;\n"
	fig3Blif = ".model fig3\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n0-1 1\n-11 1\n.end\n"
)

// slowEqn builds a design with n structurally similar cones, big enough
// (with a cold hazard cache) to outlive a millisecond-scale deadline.
func slowEqn(n int) string {
	var b strings.Builder
	b.WriteString("INPUT(a,b,c,d,e,g,h,i)\nOUTPUT(")
	for k := 0; k < n; k++ {
		if k > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "f%d", k)
	}
	b.WriteString(")\n")
	for k := 0; k < n; k++ {
		fmt.Fprintf(&b, "f%d = (a*b + c*d)*(e + g') + (a'*c + b*d')*(h + i') + b*c*(e' + h');\n", k)
	}
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if len(cfg.Libraries) == 0 {
		cfg.Libraries = []string{"LSI9K", "CMOS3"}
	}
	if cfg.AccessLog == nil {
		cfg.AccessLog = io.Discard // keep test output clean; tests that
		// assert on the log pass their own buffer
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(raw)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeMapResponse(t *testing.T, w *httptest.ResponseRecorder) MapResponse {
	t.Helper()
	var resp MapResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, w.Body.String())
	}
	return resp
}

func TestMapEndpointJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		req  MapRequest
	}{
		{"eqn", MapRequest{Name: "fig3", Format: "eqn", Design: fig3Eqn, Library: "LSI9K", Mode: "async"}},
		{"blif", MapRequest{Format: "blif", Design: fig3Blif, Library: "LSI9K", Mode: "async", Output: "both"}},
		{"sync-delay", MapRequest{Format: "eqn", Design: fig3Eqn, Mode: "sync", Objective: "delay"}},
	} {
		w := postJSON(t, s.Handler(), "/map", tc.req)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, w.Code, w.Body.String())
		}
		resp := decodeMapResponse(t, w)
		if resp.Gates == 0 || resp.Area <= 0 {
			t.Errorf("%s: empty mapping: %+v", tc.name, resp)
		}
		if tc.req.Output == "both" && (resp.Netlist == "" || !strings.Contains(resp.Verilog, "module fig3(")) {
			t.Errorf("%s: missing rendered outputs: %+v", tc.name, resp)
		}
		if tc.req.Output == "" && resp.Netlist == "" {
			t.Errorf("%s: default output should include the netlist", tc.name)
		}
	}
}

// A raw (non-JSON) POST body is the design text; options ride in query
// parameters. This is the curl-friendly path the CI smoke test uses.
func TestMapEndpointRawBody(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodPost,
		"/map?format=blif&library=LSI9K&mode=async&output=netlist",
		strings.NewReader(fig3Blif))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeMapResponse(t, w)
	if resp.Name != "fig3" || resp.Gates == 0 || resp.Netlist == "" {
		t.Fatalf("unexpected response: %+v", resp)
	}
}

func TestMapEndpointBadInputs(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	for _, tc := range []struct {
		name string
		do   func() *httptest.ResponseRecorder
		want int
	}{
		{"method", func() *httptest.ResponseRecorder {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/map", nil))
			return w
		}, http.StatusMethodNotAllowed},
		{"bad-json", func() *httptest.ResponseRecorder {
			w := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/map", strings.NewReader("{not json"))
			req.Header.Set("Content-Type", "application/json")
			h.ServeHTTP(w, req)
			return w
		}, http.StatusBadRequest},
		{"bad-int-param", func() *httptest.ResponseRecorder {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/map?timeout_ms=soon", strings.NewReader(fig3Blif)))
			return w
		}, http.StatusBadRequest},
		{"empty-design", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/map", MapRequest{Format: "eqn"})
		}, http.StatusBadRequest},
		{"unknown-library", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/map", MapRequest{Format: "eqn", Design: fig3Eqn, Library: "TTL74"})
		}, http.StatusBadRequest},
		{"unknown-format", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/map", MapRequest{Format: "vhdl", Design: fig3Eqn})
		}, http.StatusBadRequest},
		{"parse-error", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/map", MapRequest{Format: "eqn", Design: "f = ((a;"})
		}, http.StatusBadRequest},
		{"bad-mode", func() *httptest.ResponseRecorder {
			return postJSON(t, h, "/map", MapRequest{Format: "eqn", Design: fig3Eqn, Mode: "psycho"})
		}, http.StatusBadRequest},
	} {
		w := tc.do()
		if w.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, w.Code, tc.want, w.Body.String())
		}
		var eb errorBody
		if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, w.Body.String())
		}
	}
}

// One failing design in a batch must not poison its neighbours.
func TestBatchErrorIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/map/batch", BatchRequest{
		Defaults: MapRequest{Format: "eqn", Library: "LSI9K", Mode: "async"},
		Designs: []MapRequest{
			{Name: "ok1", Design: fig3Eqn},
			{Name: "broken", Design: "f = ((a;"},
			{Name: "ok2", Design: fig3Eqn, Library: "CMOS3"},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 2 || resp.Failed != 1 || len(resp.Results) != 3 {
		t.Fatalf("succeeded=%d failed=%d results=%d", resp.Succeeded, resp.Failed, len(resp.Results))
	}
	if resp.Results[0].MapResponse == nil || resp.Results[0].Gates == 0 {
		t.Errorf("first design should have mapped: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" || resp.Results[1].MapResponse != nil {
		t.Errorf("second design should carry only an error: %+v", resp.Results[1])
	}
	if resp.Results[2].MapResponse == nil || resp.Results[2].Library != "CMOS3" {
		t.Errorf("third design should have mapped on CMOS3: %+v", resp.Results[2])
	}
}

// With every worker slot busy and the wait queue full, new requests are
// rejected immediately with 503 — backpressure instead of pile-up.
func TestBackpressure503(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	// Occupy the only worker slot.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	// Fill the wait queue (MaxConcurrent+MaxQueue waiters are admitted)
	// with requests that will sit in acquire until we cancel them.
	waitCtx, cancelWaiters := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		go func() {
			req := httptest.NewRequest(http.MethodPost, "/map?format=eqn&library=LSI9K", strings.NewReader(fig3Eqn))
			req = req.WithContext(waitCtx)
			w := httptest.NewRecorder()
			s.Handler().ServeHTTP(w, req)
			done <- w
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never queued: %d", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	// The next request must bounce instantly.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost,
		"/map?format=eqn&library=LSI9K", strings.NewReader(fig3Eqn)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := s.reg.Counter(MetricRejected).Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}

	// Release the waiters; their contexts end before a slot frees up.
	cancelWaiters()
	for i := 0; i < 2; i++ {
		select {
		case w := <-done:
			if w.Code != 499 {
				t.Errorf("cancelled waiter got status %d", w.Code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never finished after cancel")
		}
	}
}

// A request deadline must abort the covering DP and answer 504.
func TestRequestTimeout504(t *testing.T) {
	s := newTestServer(t, Config{
		MaxTimeout:  time.Minute,
		HazardCache: hazcache.New(0), // cold private cache: keep the run slow
		Registry:    obs.NewRegistry(),
	})
	w := postJSON(t, s.Handler(), "/map", MapRequest{
		Format: "eqn", Design: slowEqn(120), Library: "LSI9K", TimeoutMS: 3,
	})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", w.Code, w.Body.String())
	}
	if got := s.reg.Counter(MetricTimeouts).Value(); got != 1 {
		t.Errorf("timeout counter = %d, want 1", got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if w := postJSON(t, h, "/map", MapRequest{Format: "eqn", Design: fig3Eqn}); w.Code != http.StatusOK {
		t.Fatalf("warm-up map failed: %d %s", w.Code, w.Body.String())
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "LSI9K") {
		t.Errorf("healthz does not list libraries: %s", w.Body.String())
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	body := w.Body.String()
	for _, name := range []string{MetricRequests, MetricRequestSeconds, MetricInflight} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics JSON missing %s:\n%s", name, body)
		}
	}
	// The mapper's own metrics land in the same registry.
	if !strings.Contains(body, "map_") {
		t.Errorf("metrics JSON missing mapper metrics:\n%s", body)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics?format=text", nil))
	if !strings.Contains(w.Body.String(), MetricRequests) {
		t.Errorf("text metrics missing %s:\n%s", MetricRequests, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text metrics content-type %q", ct)
	}
}

// A panicking request answers 500 and leaves the server serving. The
// recovery is a structured log line carrying the request ID.
func TestProtectIsolatesPanic(t *testing.T) {
	var logBuf bytes.Buffer
	s := newTestServer(t, Config{AccessLog: &syncBuffer{buf: &logBuf}})
	h := s.instrument(s.protect(func(w http.ResponseWriter, r *http.Request) { panic("kaboom") }))
	w := httptest.NewRecorder()
	h(w, httptest.NewRequest(http.MethodGet, "/map", nil))
	if w.Code != http.StatusInternalServerError || !strings.Contains(w.Body.String(), "kaboom") {
		t.Fatalf("panic response: %d %s", w.Code, w.Body.String())
	}
	if got := s.reg.Counter(MetricPanics).Value(); got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}
	rid := w.Header().Get(RequestIDHeader)
	if rid == "" {
		t.Fatal("panic response lost the X-Request-ID header")
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"msg":"panic recovered"`) || !strings.Contains(logs, rid) {
		t.Errorf("panic log line missing or uncorrelated (rid %s):\n%s", rid, logs)
	}
	// The server still works.
	if w := postJSON(t, s.Handler(), "/map", MapRequest{Format: "eqn", Design: fig3Eqn}); w.Code != http.StatusOK {
		t.Fatalf("server dead after panic: %d %s", w.Code, w.Body.String())
	}
}

func TestUnknownLibraryAtStartup(t *testing.T) {
	if _, err := New(Config{Libraries: []string{"NOPE"}}); err == nil {
		t.Fatal("New accepted an unknown library")
	}
}

// A server restarted onto the same store file serves byte-identical
// responses with a warm-start hit rate > 0: the second process replays
// every cone's covering solution from disk instead of re-running the DP.
func TestStoreWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "solutions.mapstore")
	req := MapRequest{Name: "warm", Format: "eqn", Design: slowEqn(4), Library: "LSI9K", Mode: "async"}

	st1, err := mapstore.Open(path, mapstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestServer(t, Config{Store: st1})
	w := postJSON(t, s1.Handler(), "/map", req)
	if w.Code != http.StatusOK {
		t.Fatalf("first server: status %d: %s", w.Code, w.Body.String())
	}
	cold := decodeMapResponse(t, w)
	if cold.Stats.StoreMisses == 0 {
		t.Fatalf("cold server reported no store misses: %+v", cold.Stats)
	}
	if err := st1.Close(); err != nil { // "process" one exits
		t.Fatal(err)
	}

	st2, err := mapstore.Open(path, mapstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := newTestServer(t, Config{Store: st2})
	w = postJSON(t, s2.Handler(), "/map", req)
	if w.Code != http.StatusOK {
		t.Fatalf("restarted server: status %d: %s", w.Code, w.Body.String())
	}
	warm := decodeMapResponse(t, w)

	if warm.Netlist != cold.Netlist {
		t.Errorf("restart changed the netlist:\ncold:\n%s\nwarm:\n%s", cold.Netlist, warm.Netlist)
	}
	if warm.Gates != cold.Gates || warm.Area != cold.Area || warm.Delay != cold.Delay {
		t.Errorf("restart changed the summary: cold=%+v warm=%+v", cold, warm)
	}
	if cd, wd := cold.Stats.Deterministic(), warm.Stats.Deterministic(); cd != wd {
		t.Errorf("restart changed deterministic stats:\ncold %+v\nwarm %+v", cd, wd)
	}
	if warm.Stats.StoreHits == 0 {
		t.Errorf("restarted server had no warm hits: %+v", warm.Stats)
	}
	if warm.Stats.StoreHits != warm.Stats.Cones || warm.Stats.StoreMisses != 0 {
		t.Errorf("warm restart: hits=%d misses=%d, want %d hits 0 misses",
			warm.Stats.StoreHits, warm.Stats.StoreMisses, warm.Stats.Cones)
	}

	// The store's counters are visible on the restarted server's /metrics.
	mw := httptest.NewRecorder()
	s2.Handler().ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics?format=text", nil))
	if !strings.Contains(mw.Body.String(), "mapstore_hits") {
		t.Errorf("/metrics missing mapstore gauges:\n%s", mw.Body.String())
	}
}
