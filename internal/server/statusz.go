package server

// Rolling service status: per-stage latency windows, the in-flight
// request table, and the /statusz endpoint that reports both alongside
// admission pressure and cache hit rates. Everything here is
// monitoring-grade — it observes the mapping path without ever gating it.

import (
	"context"
	"net/http"
	"sync"
	"time"

	"gfmap/internal/fleet"
	"gfmap/internal/obs"
)

// Rolling metric names. The windows are registered into the server's
// registry, so they also appear on /metrics (as Prometheus summaries and
// in the JSON snapshot), not only on /statusz.
const (
	RollingRequestSeconds    = "rolling_request_seconds"
	RollingQueueWaitSeconds  = "rolling_queue_wait_seconds"
	RollingDecomposeSeconds  = "rolling_decompose_seconds"
	RollingPartitionSeconds  = "rolling_partition_seconds"
	RollingCoverSeconds      = "rolling_cover_seconds"
	RollingEmitSeconds       = "rolling_emit_seconds"
	RollingSynthesizeSeconds = "rolling_synthesize_seconds"
	RollingSimulateSeconds   = "rolling_simulate_seconds"
)

// rollingSet groups the per-stage rolling windows. request covers the
// whole handler (queue wait included); wait isolates time spent blocked
// on the admission semaphore; decompose..emit are the mapper's phase wall
// times from core.Stats; synthesize and simulate are the /synth
// pipeline's bracketing phases (burst-mode synthesis before the mapper,
// evidence simulation after it).
type rollingSet struct {
	request    *obs.RollingHistogram
	wait       *obs.RollingHistogram
	decompose  *obs.RollingHistogram
	partition  *obs.RollingHistogram
	cover      *obs.RollingHistogram
	emit       *obs.RollingHistogram
	synthesize *obs.RollingHistogram
	simulate   *obs.RollingHistogram
}

func newRollingSet(reg *obs.Registry, window time.Duration) rollingSet {
	// 100µs .. ~14min in ×2 steps: wide enough for both sub-millisecond
	// emit phases and requests that ride the 5-minute timeout cap.
	bounds := obs.ExpBuckets(1e-4, 2, 23)
	mk := func(name string) *obs.RollingHistogram {
		return reg.Rolling(name, bounds, window, 6)
	}
	return rollingSet{
		request:    mk(RollingRequestSeconds),
		wait:       mk(RollingQueueWaitSeconds),
		decompose:  mk(RollingDecomposeSeconds),
		partition:  mk(RollingPartitionSeconds),
		cover:      mk(RollingCoverSeconds),
		emit:       mk(RollingEmitSeconds),
		synthesize: mk(RollingSynthesizeSeconds),
		simulate:   mk(RollingSimulateSeconds),
	}
}

// inflightEntry is one live request in the in-flight table. The identity
// fields are fixed at admission; design/library are filled in by mapOne
// once the request body has been parsed.
type inflightEntry struct {
	id     string
	method string
	path   string
	start  time.Time

	mu      sync.Mutex
	design  string
	library string
}

func (e *inflightEntry) setDesign(design, library string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.design, e.library = design, library
	e.mu.Unlock()
}

func (e *inflightEntry) designLibrary() (string, string) {
	if e == nil {
		return "", ""
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.design, e.library
}

type entryKey struct{}

func withEntry(ctx context.Context, e *inflightEntry) context.Context {
	return context.WithValue(ctx, entryKey{}, e)
}

func entryFrom(ctx context.Context) *inflightEntry {
	e, _ := ctx.Value(entryKey{}).(*inflightEntry)
	return e
}

// track registers a request in the in-flight table; untrack removes it.
// The table is keyed by entry (not by request ID) so a client reusing an
// X-Request-ID across concurrent requests cannot evict another's row.
func (s *Server) track(id string, r *http.Request) *inflightEntry {
	e := &inflightEntry{id: id, method: r.Method, path: r.URL.Path, start: time.Now()}
	s.infMu.Lock()
	s.infTable[e] = struct{}{}
	s.infMu.Unlock()
	return e
}

func (s *Server) untrack(e *inflightEntry) {
	s.infMu.Lock()
	delete(s.infTable, e)
	s.infMu.Unlock()
}

// StageStats is one pipeline stage's rolling latency digest over the
// status window, in milliseconds.
type StageStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// InflightInfo is one row of the in-flight request table.
type InflightInfo struct {
	RequestID string  `json:"request_id"`
	Method    string  `json:"method"`
	Path      string  `json:"path"`
	Design    string  `json:"design,omitempty"`
	Library   string  `json:"library,omitempty"`
	AgeMS     float64 `json:"age_ms"`
}

// AdmissionStatus reports the admission limiter's current pressure
// against its configured bounds.
type AdmissionStatus struct {
	Inflight      int64 `json:"inflight"`
	Queued        int64 `json:"queued"`
	MaxConcurrent int   `json:"max_concurrent"`
	MaxQueue      int   `json:"max_queue"`
}

// CacheStatus summarises the shared hazard cache.
type CacheStatus struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

// StoreStatus summarises the persistent mapping store; Enabled is false
// (and the counters zero) when the server runs without one.
type StoreStatus struct {
	Enabled  bool    `json:"enabled"`
	Entries  int     `json:"entries"`
	Hits     uint64  `json:"hits"`
	DiskHits uint64  `json:"disk_hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
}

// StatuszResponse is the /statusz payload. Fleet is present only on a
// coordinator: per-worker health, inflight, win/failure counters and
// rolling latency quantiles, plus fleet-wide hedge/retry/fallback totals.
type StatuszResponse struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	WindowSeconds float64               `json:"window_seconds"`
	Stages        map[string]StageStats `json:"stages"`
	Admission     AdmissionStatus       `json:"admission"`
	HazardCache   CacheStatus           `json:"hazard_cache"`
	Store         StoreStatus           `json:"store"`
	Fleet         *fleet.Status         `json:"fleet,omitempty"`
	Inflight      []InflightInfo        `json:"inflight_requests"`
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func stageStats(h *obs.RollingHistogram) StageStats {
	snap := h.Snapshot()
	const ms = 1e3
	return StageStats{
		Count:  snap.Count,
		MeanMS: snap.Mean() * ms,
		P50MS:  snap.Quantile(0.50) * ms,
		P90MS:  snap.Quantile(0.90) * ms,
		P99MS:  snap.Quantile(0.99) * ms,
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	resp := StatuszResponse{
		UptimeSeconds: now.Sub(s.start).Seconds(),
		WindowSeconds: s.roll.request.Window().Seconds(),
		Stages: map[string]StageStats{
			"request":    stageStats(s.roll.request),
			"queue_wait": stageStats(s.roll.wait),
			"decompose":  stageStats(s.roll.decompose),
			"partition":  stageStats(s.roll.partition),
			"cover":      stageStats(s.roll.cover),
			"emit":       stageStats(s.roll.emit),
			"synthesize": stageStats(s.roll.synthesize),
			"simulate":   stageStats(s.roll.simulate),
		},
		Admission: AdmissionStatus{
			Inflight:      s.inflight.Load(),
			Queued:        s.queued.Load(),
			MaxConcurrent: s.cfg.MaxConcurrent,
			MaxQueue:      s.cfg.MaxQueue,
		},
	}
	hz := s.cfg.HazardCache.Stats()
	resp.HazardCache = CacheStatus{
		Hits:    hz.Hits,
		Misses:  hz.Misses,
		Entries: hz.Entries,
		HitRate: hitRate(hz.Hits, hz.Misses),
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		resp.Store = StoreStatus{
			Enabled:  true,
			Entries:  st.Entries,
			Hits:     st.Hits,
			DiskHits: st.DiskHits,
			Misses:   st.Misses,
			HitRate:  hitRate(st.Hits+st.DiskHits, st.Misses),
		}
	}
	if s.fleet != nil {
		fst := s.fleet.coord.Status()
		resp.Fleet = &fst
	}
	s.infMu.Lock()
	resp.Inflight = make([]InflightInfo, 0, len(s.infTable))
	for e := range s.infTable {
		design, lib := e.designLibrary()
		resp.Inflight = append(resp.Inflight, InflightInfo{
			RequestID: e.id,
			Method:    e.method,
			Path:      e.path,
			Design:    design,
			Library:   lib,
			AgeMS:     now.Sub(e.start).Seconds() * 1e3,
		})
	}
	s.infMu.Unlock()
	writeJSON(w, resp)
}
