package server

// POST /synth: the spec-to-silicon pipeline as a service. A burst-mode
// specification is parsed, synthesised into hazard-free two-level logic,
// technology mapped (always async mode — hazard preservation is the
// point), and the mapped netlist is simulated transition-by-transition to
// produce a machine-checkable hazard-freedom certificate. The endpoint
// shares the /map admission limiter, deadlines, request IDs and
// observability; the pipeline itself is deterministic, so the netlist and
// evidence bytes match `asyncmap -spec` for the same spec and library.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/synth"
)

// SynthRequest is one burst-mode specification to push through the
// pipeline. In a raw (non-JSON) POST to /synth the body is the spec text
// and the remaining fields come from query parameters of the same names.
type SynthRequest struct {
	// Spec is the burst-mode specification text (bmspec format).
	Spec string `json:"spec"`
	// Library is a preloaded library name; default is the server's first
	// configured library.
	Library string `json:"library,omitempty"`
	// Trials is the number of random-delay simulation trials per
	// transition on top of the deterministic unit-delay trial; 0 means
	// synth.DefaultTrials, values past synth.MaxTrials are clamped.
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed of the evidence delay RNG; recorded in the
	// evidence so a run can be reproduced exactly.
	Seed uint64 `json:"seed,omitempty"`
	// VCD attaches a waveform dump to each transition's evidence.
	VCD bool `json:"vcd,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// capped at the server's MaxTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Output is "netlist" (default) or "none" (evidence and statistics
	// only).
	Output string `json:"output,omitempty"`
}

// SynthResponse is the pipeline's result: the mapped netlist plus the
// hazard-freedom evidence. A run whose certificate fails (evidence with
// hazard_free=false) still answers 200 — the pipeline worked and the
// evidence is the product; the client decides what a refutation means.
type SynthResponse struct {
	RequestID string `json:"request_id,omitempty"`
	// Name is the machine name from the spec.
	Name     string          `json:"name"`
	Library  string          `json:"library"`
	States   int             `json:"states"`
	Gates    int             `json:"gates"`
	Area     float64         `json:"area"`
	Delay    float64         `json:"delay"`
	Netlist  string          `json:"netlist,omitempty"`
	Evidence *synth.Evidence `json:"evidence"`
	Stats    core.Stats      `json:"stats"`
	// Wall-clock phase breakdown (reporting only; no payload bytes
	// depend on it).
	SynthesizeMS float64 `json:"synthesize_ms"`
	MapMS        float64 `json:"map_ms"`
	SimulateMS   float64 `json:"simulate_ms"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFromContext(r.Context())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, rid, errors.New("POST only"))
		return
	}
	s.requests.Inc()
	req, err := s.decodeSynthRequest(r)
	if err != nil {
		s.errorsC.Inc()
		writeError(w, http.StatusBadRequest, rid, err)
		return
	}
	release, err := s.acquire(r.Context())
	if err != nil {
		s.errorsC.Inc()
		if errors.Is(err, errBusy) {
			s.rejected.Inc()
			s.writeBusy(w, rid, err)
		} else {
			writeError(w, 499, rid, err)
		}
		return
	}
	defer release()
	resp, err := s.synthOne(r.Context(), req)
	if err != nil {
		s.errorsC.Inc()
		writeError(w, s.statusFor(err), rid, err)
		return
	}
	writeJSON(w, resp)
}

// decodeSynthRequest reads a /synth body: JSON when the Content-Type says
// so, otherwise the raw spec text with options in query parameters.
func (s *Server) decodeSynthRequest(r *http.Request) (SynthRequest, error) {
	var req SynthRequest
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad request JSON: %w", err)
		}
		return req, nil
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return req, fmt.Errorf("read body: %w", err)
	}
	q := r.URL.Query()
	req = SynthRequest{
		Spec:    string(raw),
		Library: q.Get("library"),
		Output:  q.Get("output"),
		VCD:     q.Get("vcd") == "1" || q.Get("vcd") == "true",
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"trials", &req.Trials}, {"timeout_ms", &req.TimeoutMS},
	} {
		if v := q.Get(f.key); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad %s: %w", f.key, err)
			}
			*f.dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("bad seed: %w", err)
		}
		req.Seed = n
	}
	return req, nil
}

// synthOne validates, synthesises, maps and simulates one spec under its
// deadline. The caller must already hold an admission slot.
func (s *Server) synthOne(ctx context.Context, req SynthRequest) (*SynthResponse, error) {
	if strings.TrimSpace(req.Spec) == "" {
		return nil, badInput(errors.New("empty spec"))
	}
	libName := req.Library
	if libName == "" {
		libName = s.order[0]
	}
	lib, ok := s.libs[libName]
	if !ok {
		return nil, badInput(fmt.Errorf("unknown library %q (loaded: %s)", libName, strings.Join(s.order, ", ")))
	}
	output := req.Output
	switch output {
	case "", "netlist":
		output = "netlist"
	case "none":
	default:
		return nil, badInput(fmt.Errorf("unknown output %q (want netlist or none)", output))
	}
	m, err := bmspec.ParseString(req.Spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", synth.ErrBadSpec, err)
	}
	entryFrom(ctx).setDesign(m.Name, libName)

	opts := synth.Options{
		Library: lib,
		Trials:  req.Trials,
		Seed:    req.Seed,
		WithVCD: req.VCD,
		Map: core.Options{
			Workers:       s.cfg.MapWorkers,
			DisableArenas: s.cfg.DisableArenas,
			HazardCache:   s.cfg.HazardCache,
			Store:         s.cfg.Store,
			Metrics:       s.reg,
			Tracer:        s.cfg.Tracer,
			RequestID:     RequestIDFromContext(ctx),
		},
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	runCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	start := time.Now()
	res, err := synth.RunMachine(runCtx, m, opts)
	elapsed := time.Since(start)
	s.reqSeconds.Observe(elapsed.Seconds())
	if err != nil {
		return nil, err
	}
	s.designs.Inc()
	s.roll.synthesize.Observe(res.Durations.Synthesize.Seconds())
	s.roll.simulate.Observe(res.Durations.Simulate.Seconds())
	s.roll.decompose.Observe(res.Mapped.Stats.DecomposeTime.Seconds())
	s.roll.partition.Observe(res.Mapped.Stats.PartitionTime.Seconds())
	s.roll.cover.Observe(res.Mapped.Stats.CoverTime.Seconds())
	s.roll.emit.Observe(res.Mapped.Stats.EmitTime.Seconds())

	const ms = float64(time.Millisecond)
	resp := &SynthResponse{
		RequestID:    opts.Map.RequestID,
		Name:         m.Name,
		Library:      libName,
		States:       len(m.States()),
		Gates:        res.Mapped.Netlist.GateCount(),
		Area:         res.Mapped.Area,
		Delay:        res.Mapped.Delay,
		Evidence:     res.Evidence,
		Stats:        res.Mapped.Stats,
		SynthesizeMS: float64(res.Durations.Synthesize) / ms,
		MapMS:        float64(res.Durations.Map) / ms,
		SimulateMS:   float64(res.Durations.Simulate) / ms,
		ElapsedMS:    float64(elapsed) / ms,
	}
	if output == "netlist" {
		resp.Netlist = res.Mapped.Netlist.String()
	}
	return resp, nil
}
