package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gfmap/internal/obs"
)

const vmeSpec = `
name vmectl
input dsr 0
input ldtack 0
output lds 0
output dtack 0
initial idle
idle -> got : dsr+ / lds+
got -> ackd : ldtack+ / dtack+
ackd -> rel : dsr- / dtack- lds-
rel -> idle : ldtack- /
`

func newSynthServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.AccessLog == nil {
		cfg.AccessLog = io.Discard
	}
	if len(cfg.Libraries) == 0 {
		cfg.Libraries = []string{"LSI9K"}
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postSynth(t *testing.T, url, body, query string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/synth"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestSynthEndpoint(t *testing.T) {
	ts := newSynthServer(t, Config{})
	resp, data := postSynth(t, ts.URL, vmeSpec, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("no X-Request-ID header")
	}
	var sr SynthResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Name != "vmectl" || sr.Gates == 0 || sr.Netlist == "" {
		t.Fatalf("bad response: name=%q gates=%d netlist %d bytes", sr.Name, sr.Gates, len(sr.Netlist))
	}
	if sr.Evidence == nil {
		t.Fatal("no evidence")
	}
	if !sr.Evidence.HazardFree || !sr.Evidence.Settled {
		t.Fatalf("certificate failed: hazard_free=%v settled=%v", sr.Evidence.HazardFree, sr.Evidence.Settled)
	}
	if len(sr.Evidence.Transitions) < 4 {
		t.Fatalf("only %d transitions in evidence", len(sr.Evidence.Transitions))
	}
	if sr.RequestID != resp.Header.Get(RequestIDHeader) {
		t.Errorf("request_id %q != header %q", sr.RequestID, resp.Header.Get(RequestIDHeader))
	}
}

// Reruns and JSON-body requests must be byte-identical to the raw-body
// request: the pipeline is deterministic and the encoding path must not
// leak into the payload.
func TestSynthDeterministic(t *testing.T) {
	ts := newSynthServer(t, Config{})
	_, first := postSynth(t, ts.URL, vmeSpec, "")
	_, again := postSynth(t, ts.URL, vmeSpec, "")
	var a, b SynthResponse
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(again, &b); err != nil {
		t.Fatal(err)
	}
	if a.Netlist != b.Netlist {
		t.Error("netlist differs across reruns")
	}
	evA, _ := json.Marshal(a.Evidence)
	evB, _ := json.Marshal(b.Evidence)
	if string(evA) != string(evB) {
		t.Error("evidence differs across reruns")
	}

	// JSON body, same options.
	body, _ := json.Marshal(SynthRequest{Spec: vmeSpec})
	resp, err := http.Post(ts.URL+"/synth", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var c SynthResponse
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	if c.Netlist != a.Netlist {
		t.Error("JSON-body netlist differs from raw-body netlist")
	}
}

func TestSynthBadSpec(t *testing.T) {
	ts := newSynthServer(t, Config{})
	for _, tc := range []struct {
		name, body, query string
		status            int
	}{
		{"empty body", "", "", http.StatusBadRequest},
		{"syntax error", "name x\ninput + 0\n", "", http.StatusBadRequest},
		{"unknown library", vmeSpec, "?library=nope", http.StatusBadRequest},
		{"bad output", vmeSpec, "?output=wavefile", http.StatusBadRequest},
		{"get refused", "", "", http.StatusMethodNotAllowed},
	} {
		var resp *http.Response
		var data []byte
		if tc.name == "get refused" {
			r, err := http.Get(ts.URL + "/synth")
			if err != nil {
				t.Fatal(err)
			}
			data, _ = io.ReadAll(r.Body)
			r.Body.Close()
			resp = r
		} else {
			resp, data = postSynth(t, ts.URL, tc.body, tc.query)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: bad error body %s", tc.name, data)
		}
	}
}

// A machine past the synthesis variable bound is understood but not
// realisable: 422, not 400.
func TestSynthUnsynthesizable(t *testing.T) {
	ts := newSynthServer(t, Config{})
	var b strings.Builder
	b.WriteString("name big\n")
	for i := 0; i < 20; i++ {
		b.WriteString("input x")
		b.WriteString(string(rune('0' + i/10)))
		b.WriteString(string(rune('0' + i%10)))
		b.WriteString(" 0\n")
	}
	b.WriteString("initial s0\ns0 -> s1 : x00+ /\ns1 -> s0 : x00- /\n")
	resp, data := postSynth(t, ts.URL, b.String(), "")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d want 422: %s", resp.StatusCode, data)
	}
}

func TestSynthOptionsPlumbed(t *testing.T) {
	ts := newSynthServer(t, Config{})
	resp, data := postSynth(t, ts.URL, vmeSpec, "?trials=2&seed=99&vcd=1&output=none")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sr SynthResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Netlist != "" {
		t.Error("output=none still returned a netlist")
	}
	if sr.Evidence.Trials != 2 || sr.Evidence.Seed != 99 {
		t.Errorf("evidence trials=%d seed=%d, want 2/99", sr.Evidence.Trials, sr.Evidence.Seed)
	}
	for _, te := range sr.Evidence.Transitions {
		if !strings.Contains(te.VCD, "$enddefinitions") {
			t.Fatalf("transition %d/%s: no VCD despite vcd=1", te.Index, te.Phase)
		}
	}
}

// /synth must feed the synthesis observability: rolling windows on
// /statusz and the synth_* counters on /metrics.
func TestSynthObservability(t *testing.T) {
	reg := obs.NewRegistry()
	ts := newSynthServer(t, Config{Registry: reg})
	if resp, data := postSynth(t, ts.URL, vmeSpec, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"synthesize", "simulate", "cover"} {
		if st.Stages[stage].Count == 0 {
			t.Errorf("stage %q saw no samples", stage)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"synth_machines_total", "synth_transitions_total", "rolling_synthesize_seconds", "rolling_simulate_seconds"} {
		if !strings.Contains(string(prom), metric) {
			t.Errorf("metric %s missing from Prometheus exposition", metric)
		}
	}
}
