package synth

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/dsim"
)

// Evidence is the machine-checkable hazard-freedom certificate of a
// pipeline run: every transition the machine can exercise was simulated
// on the MAPPED netlist under unit delays plus Trials random delay
// assignments, and every observable signal (machine outputs and
// next-state functions) must change monotonically to its specified value.
// Evidence is deterministic: same machine, netlist, trials and seed give
// byte-identical JSON.
type Evidence struct {
	Design      string               `json:"design"`
	Trials      int                  `json:"trials"` // random-delay trials per transition, plus one unit-delay trial
	Seed        uint64               `json:"seed"`
	Transitions []TransitionEvidence `json:"transitions"`
	HazardFree  bool                 `json:"hazard_free"`
	Settled     bool                 `json:"settled"`
}

// TransitionEvidence is the verdict for one phase of one machine edge:
// the input burst firing in the old state, then the state-variable update
// under the set-before-reset discipline — "state-update-rise" (the new
// code's bits come up, through code|nextCode) followed by
// "state-update-fall" (the old ones drop), or a single "state-update" when
// the codes differ in one direction only. Changing lists the primary
// inputs of the combinational block (machine inputs or y bits) that
// change, sorted.
type TransitionEvidence struct {
	Index      int             `json:"index"` // edge index in the machine
	From       string          `json:"from"`
	To         string          `json:"to"`
	Phase      string          `json:"phase"` // "input-burst", "state-update", "state-update-rise" or "state-update-fall"
	Changing   []string        `json:"changing"`
	Signals    []SignalVerdict `json:"signals"`
	HazardFree bool            `json:"hazard_free"`
	Settled    bool            `json:"settled"`
	VCD        string          `json:"vcd,omitempty"`
}

// SignalVerdict is one observed signal's behaviour across all trials of a
// transition.
type SignalVerdict struct {
	Signal         string `json:"signal"`
	Initial        bool   `json:"initial"`
	Want           bool   `json:"want"`
	Glitched       bool   `json:"glitched"`        // more changes than a clean transition in some trial
	Settled        bool   `json:"settled"`         // ended at Want in every trial
	MaxTransitions int    `json:"max_transitions"` // worst trial
}

// Simulate runs the mapped netlist through every specified transition of
// the machine and returns the per-transition verdicts. An unsettled or
// glitching transition is evidence of a pipeline bug (the synthesis
// guarantees hazard-freedom and the mapper must preserve it), reported in
// the Evidence rather than as an error: the caller decides whether a
// failed certificate is fatal.
func Simulate(ctx context.Context, m *bmspec.Machine, nl *core.Netlist, opts Options) (*Evidence, error) {
	net, err := nl.ToNetwork()
	if err != nil {
		return nil, fmt.Errorf("synth: netlist to network: %w", err)
	}
	c, err := dsim.New(net)
	if err != nil {
		return nil, fmt.Errorf("synth: elaborate for simulation: %w", err)
	}
	ent, err := m.EntryVectors()
	if err != nil {
		return nil, err
	}
	nbits := m.StateBits()
	observed := append([]string(nil), m.Outputs...)
	for i := 0; i < nbits; i++ {
		observed = append(observed, fmt.Sprintf("Y%d", i))
	}

	ev := &Evidence{
		Design:     m.Name,
		Trials:     opts.trials(),
		Seed:       opts.Seed,
		HazardFree: true,
		Settled:    true,
	}
	for ei, e := range m.Edges {
		if err := ctxDone(ctx); err != nil {
			return nil, err
		}
		from, to := ent[e.From], ent[e.To]
		code, nextCode := m.EncodingOf(e.From), m.EncodingOf(e.To)

		// Phase 1: the input burst fires while the state variables hold
		// the old code; outputs emit their burst and the next-state
		// functions move to the new code.
		want := map[string]bool{}
		for _, o := range m.Outputs {
			want[o] = to.Out[o]
		}
		for i := 0; i < nbits; i++ {
			want[fmt.Sprintf("Y%d", i)] = nextCode&(1<<uint(i)) != 0
		}
		initial := blockInputs(m, from.In, code, nbits)
		finals := map[string]bool{}
		for s := range e.In.Signals() {
			finals[s] = to.In[s]
		}
		te, err := checkTransition(c, transitionCase{
			index: ei, from: e.From, to: e.To, phase: "input-burst",
			initial: initial, finals: finals, want: want, observed: observed,
		}, opts, ev.Seed)
		if err != nil {
			return nil, err
		}
		ev.add(te)

		// Phase 2: the machine latches the new state code; the inputs hold
		// and every observed signal must hold too (a static transition).
		// The update follows the set-before-reset discipline the synthesis
		// specified (bmspec.Synthesize): rising state bits first, through
		// code|nextCode, then the falling ones — so a one-hot update is two
		// single-bit cases, never the all-bits-cleared intermediate.
		if nextCode != code {
			type updateStep struct {
				phase    string
				from, to uint64
			}
			var steps []updateStep
			if mid := code | nextCode; mid != code && mid != nextCode {
				steps = []updateStep{
					{"state-update-rise", code, mid},
					{"state-update-fall", mid, nextCode},
				}
			} else {
				steps = []updateStep{{"state-update", code, nextCode}}
			}
			for _, st := range steps {
				initial = blockInputs(m, to.In, st.from, nbits)
				finals = map[string]bool{}
				for i := 0; i < nbits; i++ {
					bit := uint64(1) << uint(i)
					if st.from&bit != st.to&bit {
						finals[fmt.Sprintf("y%d", i)] = st.to&bit != 0
					}
				}
				te, err := checkTransition(c, transitionCase{
					index: ei, from: e.From, to: e.To, phase: st.phase,
					initial: initial, finals: finals, want: want, observed: observed,
				}, opts, ev.Seed)
				if err != nil {
					return nil, err
				}
				ev.add(te)
			}
		}
	}
	return ev, nil
}

func (ev *Evidence) add(te TransitionEvidence) {
	ev.Transitions = append(ev.Transitions, te)
	ev.HazardFree = ev.HazardFree && te.HazardFree
	ev.Settled = ev.Settled && te.Settled
}

// blockInputs builds the full primary-input assignment of the
// combinational block: machine inputs plus the y state bits.
func blockInputs(m *bmspec.Machine, in map[string]bool, code uint64, nbits int) map[string]bool {
	a := make(map[string]bool, len(in)+nbits)
	for k, v := range in {
		a[k] = v
	}
	for i := 0; i < nbits; i++ {
		a[fmt.Sprintf("y%d", i)] = code&(1<<uint(i)) != 0
	}
	return a
}

type transitionCase struct {
	index    int
	from, to string
	phase    string
	initial  map[string]bool // full primary-input assignment before the burst
	finals   map[string]bool // changing inputs -> post-burst value
	want     map[string]bool // observed signal -> specified final value
	observed []string
}

// checkTransition simulates one multi-input change under the unit-delay
// assignment plus opts.trials() random ones, all changes released at
// t=1 in sorted signal order so the run is reproducible.
func checkTransition(c *dsim.Circuit, tc transitionCase, opts Options, seed uint64) (TransitionEvidence, error) {
	changing := make([]string, 0, len(tc.finals))
	for s := range tc.finals {
		changing = append(changing, s)
	}
	sort.Strings(changing)
	changes := make([]dsim.InputChange, 0, len(changing))
	for _, s := range changing {
		changes = append(changes, dsim.InputChange{Signal: s, Time: 1, Value: tc.finals[s]})
	}

	te := TransitionEvidence{
		Index: tc.index, From: tc.from, To: tc.to, Phase: tc.phase,
		Changing: changing, HazardFree: true, Settled: true,
	}
	verdicts := make(map[string]*SignalVerdict, len(tc.observed))
	for _, sig := range tc.observed {
		verdicts[sig] = &SignalVerdict{Signal: sig, Want: tc.want[sig], Settled: true}
	}

	var keepTrace *dsim.Trace // unit-delay trace, or the first glitching one
	trials := opts.trials()
	for trial := 0; trial <= trials; trial++ {
		var d dsim.Delays
		if trial == 0 {
			d = c.UnitDelays()
		} else {
			rng := rand.New(rand.NewSource(trialSeed(seed, tc.index, tc.phase, trial)))
			d = c.RandomDelays(rng)
		}
		trace, err := c.Run(tc.initial, changes, d)
		if err != nil {
			return te, fmt.Errorf("synth: simulate %s->%s (%s): %w", tc.from, tc.to, tc.phase, err)
		}
		glitchedTrial := false
		for _, sig := range tc.observed {
			v := verdicts[sig]
			w := trace.Waves[sig]
			if trial == 0 && len(w) > 0 {
				v.Initial = w[0].Value
			}
			if trace.Glitched(sig) {
				v.Glitched = true
				glitchedTrial = true
			}
			if w.Final() != v.Want {
				v.Settled = false
			}
			if n := w.Transitions(); n > v.MaxTransitions {
				v.MaxTransitions = n
			}
		}
		if trial == 0 || (glitchedTrial && (keepTrace == nil || !anyGlitch(keepTrace, tc.observed))) {
			keepTrace = trace
		}
	}
	for _, sig := range tc.observed {
		v := verdicts[sig]
		te.Signals = append(te.Signals, *v)
		te.HazardFree = te.HazardFree && !v.Glitched
		te.Settled = te.Settled && v.Settled
	}
	if opts.WithVCD && keepTrace != nil {
		var b strings.Builder
		module := fmt.Sprintf("e%d_%s", tc.index, strings.ReplaceAll(tc.phase, "-", "_"))
		if err := keepTrace.WriteVCD(&b, module); err != nil {
			return te, err
		}
		te.VCD = b.String()
	}
	return te, nil
}

func anyGlitch(tr *dsim.Trace, observed []string) bool {
	for _, sig := range observed {
		if tr.Glitched(sig) {
			return true
		}
	}
	return false
}

// trialSeed derives the per-trial RNG seed: a fixed mix of the base seed,
// the edge index, the phase and the trial number, so reruns and
// reorderings reproduce exactly. The phase enters through FNV-1a so every
// phase name draws an independent delay sequence.
func trialSeed(base uint64, edge int, phase string, trial int) int64 {
	h := base*0x9e3779b97f4a7c15 + uint64(edge)*1000003 + uint64(trial)*10007
	ph := uint64(14695981039346656037)
	for i := 0; i < len(phase); i++ {
		ph ^= uint64(phase[i])
		ph *= 1099511628211
	}
	h += ph
	return int64(h &^ (1 << 63)) // keep it non-negative for rand.NewSource
}
