// Package synth is the spec-to-silicon pipeline: a burst-mode machine
// specification is parsed (bmspec.Parse), compiled into hazard-free
// two-level logic (bmspec.Synthesize over the hfmin substrate), technology
// mapped without introducing hazards (core.Map in async mode), and the
// mapped netlist is then simulated transition-by-transition in the
// delay simulator (internal/dsim) to produce machine-checkable evidence of
// hazard freedom — the full Figure 1 flow of the paper, with the
// simulator as the refutation oracle motivated by the hazard-complexity
// results cited in PAPERS.md.
//
// The pipeline is deterministic end to end: the same spec, library and
// options yield a byte-identical netlist and byte-identical evidence on
// every run, whatever the worker count or cache temperature — the same
// bar the mapper itself meets.
package synth

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gfmap/internal/bmspec"
	"gfmap/internal/core"
	"gfmap/internal/library"
	"gfmap/internal/obs"
)

// DefaultTrials is the number of random-delay trials simulated per
// transition (in addition to the deterministic unit-delay trial).
const DefaultTrials = 8

// MaxTrials caps client-requested trial counts.
const MaxTrials = 64

// ErrBadSpec marks spec-text errors (syntax, invalid names, inconsistent
// machines): the input is at fault, not the pipeline. Servers map it to
// 400.
var ErrBadSpec = errors.New("synth: bad spec")

// ErrUnsynthesizable marks valid machines the pipeline cannot realise
// (variable bound exceeded, no hazard-free cover). Servers map it to 422.
var ErrUnsynthesizable = errors.New("synth: unsynthesizable")

// Options configures a pipeline run.
type Options struct {
	// Library is the target cell library. Required.
	Library *library.Library
	// Map carries the mapper options (Store, Workers, Tracer, Metrics,
	// RequestID, Ctx...). Mode is forced to Async: hazard preservation is
	// the point of the pipeline.
	Map core.Options
	// Trials is the number of random-delay simulation trials per
	// transition, on top of the unit-delay trial. 0 means DefaultTrials;
	// values past MaxTrials are clamped.
	Trials int
	// Seed is the base seed of the per-transition delay RNG. The default
	// 0 is a valid seed; evidence records the seed used.
	Seed uint64
	// WithVCD attaches a VCD waveform dump to each transition's evidence:
	// the first glitching trace when one exists, the unit-delay trace
	// otherwise.
	WithVCD bool
}

func (o Options) trials() int {
	switch {
	case o.Trials <= 0:
		return DefaultTrials
	case o.Trials > MaxTrials:
		return MaxTrials
	default:
		return o.Trials
	}
}

// Durations is the wall-clock breakdown of a pipeline run. It is
// reporting-only: no evidence or netlist bytes depend on it.
type Durations struct {
	Synthesize time.Duration
	Map        time.Duration
	Simulate   time.Duration
}

// Result is the full output of a pipeline run.
type Result struct {
	Machine   *bmspec.Machine
	Synthesis *bmspec.Synthesis
	Mapped    *core.Result
	Evidence  *Evidence
	Durations Durations
}

// Run parses a spec and drives the pipeline over it.
func Run(ctx context.Context, specText string, opts Options) (*Result, error) {
	m, err := bmspec.ParseString(specText)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return RunMachine(ctx, m, opts)
}

// RunMachine drives the pipeline over an already-parsed machine:
// synthesize, map, simulate. The context bounds all three phases.
func RunMachine(ctx context.Context, m *bmspec.Machine, opts Options) (*Result, error) {
	if opts.Library == nil {
		return nil, errors.New("synth: no library")
	}
	mo := opts.Map
	mo.Mode = core.Async
	tr := mo.Tracer
	stamp := func(sp *obs.Span) {
		if mo.RequestID != "" {
			sp.SetStr("request_id", mo.RequestID)
		}
	}

	res := &Result{Machine: m}

	ssp := tr.StartSpan("synthesize")
	stamp(&ssp)
	t0 := time.Now()
	syn, err := bmspec.Synthesize(m)
	res.Durations.Synthesize = time.Since(t0)
	if syn != nil {
		ssp.SetInt("functions", int64(len(syn.Covers)))
	}
	ssp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsynthesizable, err)
	}
	res.Synthesis = syn
	if err := ctxDone(ctx); err != nil {
		return nil, err
	}

	t0 = time.Now()
	mapped, err := core.MapContext(ctx, syn.Net, opts.Library, mo)
	res.Durations.Map = time.Since(t0)
	if err != nil {
		return nil, err
	}
	res.Mapped = mapped
	if err := ctxDone(ctx); err != nil {
		return nil, err
	}

	vsp := tr.StartSpan("simulate")
	stamp(&vsp)
	t0 = time.Now()
	ev, err := Simulate(ctx, m, mapped.Netlist, opts)
	res.Durations.Simulate = time.Since(t0)
	if ev != nil {
		vsp.SetInt("transitions", int64(len(ev.Transitions)))
		vsp.SetInt("hazard_free", b2i(ev.HazardFree))
	}
	vsp.End()
	if err != nil {
		return nil, err
	}
	res.Evidence = ev

	if reg := mo.Metrics; reg != nil {
		reg.Counter(MetricMachines).Add(1)
		reg.Counter(MetricTransitions).Add(uint64(len(ev.Transitions)))
		if !ev.HazardFree {
			reg.Counter(MetricGlitches).Add(1)
		}
	}
	return res, nil
}

// Metric names published to Options.Map.Metrics.
const (
	MetricMachines    = "synth_machines_total"
	MetricTransitions = "synth_transitions_total"
	MetricGlitches    = "synth_glitching_machines_total"
)

func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
