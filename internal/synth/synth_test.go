package synth

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gfmap/internal/bexpr"
	"gfmap/internal/core"
	"gfmap/internal/dsim"
	"gfmap/internal/library"
	"gfmap/internal/network"
)

const toggleSrc = `
name toggle
input req 0
output ack 0
initial s0
s0 -> s1 : req+ / ack+
s1 -> s0 : req- / ack-
`

const vmeSrc = `
name vmectl
input dsr 0
input ldtack 0
output lds 0
output dtack 0
initial idle
idle -> got : dsr+ / lds+
got -> ackd : ldtack+ / dtack+
ackd -> rel : dsr- / dtack- lds-
rel -> idle : ldtack- /
`

func lib(t *testing.T) *library.Library {
	t.Helper()
	l, err := library.Get("LSI9K")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestPipelineEndToEnd(t *testing.T) {
	for _, src := range []string{toggleSrc, vmeSrc} {
		res, err := Run(context.Background(), src, Options{Library: lib(t)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Mapped.Netlist.GateCount() == 0 {
			t.Fatal("no gates mapped")
		}
		// The mapped logic must compute the synthesised functions.
		if err := core.VerifyEquivalence(res.Synthesis.Net, res.Mapped.Netlist); err != nil {
			t.Errorf("%s: mapped netlist not equivalent: %v", res.Machine.Name, err)
		}
		ev := res.Evidence
		if !ev.HazardFree || !ev.Settled {
			t.Fatalf("%s: evidence failed: hazard_free=%v settled=%v\n%s",
				res.Machine.Name, ev.HazardFree, ev.Settled, dumpEvidence(t, ev))
		}
		if len(ev.Transitions) < len(res.Machine.Edges) {
			t.Errorf("%s: %d transitions for %d edges", res.Machine.Name, len(ev.Transitions), len(res.Machine.Edges))
		}
		for _, te := range ev.Transitions {
			if len(te.Changing) == 0 || len(te.Signals) == 0 {
				t.Errorf("%s: empty transition evidence %+v", res.Machine.Name, te)
			}
		}
	}
}

// The pipeline's byte-identity bar: same spec, library and seed give the
// same netlist and the same evidence JSON whatever the worker count.
func TestPipelineDeterministic(t *testing.T) {
	run := func(workers int) (string, string) {
		res, err := Run(context.Background(), vmeSrc, Options{
			Library: lib(t),
			Map:     core.Options{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Mapped.Netlist.String(), dumpEvidence(t, res.Evidence)
	}
	nl1, ev1 := run(1)
	for _, w := range []int{1, 4} {
		nl, ev := run(w)
		if nl != nl1 {
			t.Errorf("workers=%d: netlist differs:\n%s\nvs\n%s", w, nl, nl1)
		}
		if ev != ev1 {
			t.Errorf("workers=%d: evidence differs", w)
		}
	}
}

func TestPipelineVCD(t *testing.T) {
	res, err := Run(context.Background(), toggleSrc, Options{Library: lib(t), WithVCD: true, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, te := range res.Evidence.Transitions {
		if !strings.Contains(te.VCD, "$var") || !strings.Contains(te.VCD, "$enddefinitions") {
			t.Fatalf("transition %d/%s: VCD missing or malformed:\n%s", te.Index, te.Phase, te.VCD)
		}
	}
}

func TestBadSpecSentinel(t *testing.T) {
	_, err := Run(context.Background(), "name x\ninput + 0\n", Options{Library: lib(t)})
	if !errors.Is(err, ErrBadSpec) {
		t.Fatalf("want ErrBadSpec, got %v", err)
	}
}

func TestUnsynthesizableSentinel(t *testing.T) {
	var b strings.Builder
	b.WriteString("name big\n")
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, "input x%d 0\n", i)
	}
	b.WriteString("initial s0\ns0 -> s1 : x0+ /\ns1 -> s0 : x0- /\n")
	_, err := Run(context.Background(), b.String(), Options{Library: lib(t)})
	if !errors.Is(err, ErrUnsynthesizable) {
		t.Fatalf("want ErrUnsynthesizable, got %v", err)
	}
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, vmeSrc, Options{Library: lib(t)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// Oracle sanity: the transition checker must detect a real hazard. The
// classic static-1 hazard — f = s·a + s'·b with a=b=1 while s falls — must
// glitch under some sampled delay assignment.
func TestCheckTransitionDetectsHazard(t *testing.T) {
	net := network.New("hazardous")
	for _, in := range []string{"s", "a", "b"} {
		if err := net.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	expr := bexpr.Or(
		bexpr.And(bexpr.Var("s"), bexpr.Var("a")),
		bexpr.And(bexpr.Not(bexpr.Var("s")), bexpr.Var("b")),
	)
	if err := net.AddNode("f", expr); err != nil {
		t.Fatal(err)
	}
	if err := net.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	c, err := dsim.New(net)
	if err != nil {
		t.Fatal(err)
	}
	te, err := checkTransition(c, transitionCase{
		from: "p", to: "q", phase: "input-burst",
		initial:  map[string]bool{"s": true, "a": true, "b": true},
		finals:   map[string]bool{"s": false},
		want:     map[string]bool{"f": true},
		observed: []string{"f"},
	}, Options{Trials: 32}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if te.HazardFree {
		t.Fatal("static-1 hazard went undetected across 32 delay trials")
	}
}

func dumpEvidence(t *testing.T, ev *Evidence) string {
	t.Helper()
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
