package truthtab

import (
	"math/rand"
	"testing"
)

// The word-parallel kernels are checked against straightforward per-point
// reference implementations over random tables at every width the mapper
// can produce (N = 0..MaxVars).

func randTT(t *testing.T, r *rand.Rand, n int) TT {
	t.Helper()
	tt, err := NewTT(n)
	if err != nil {
		t.Fatalf("NewTT(%d): %v", n, err)
	}
	for p := uint64(0); p < 1<<uint(n); p++ {
		if r.Intn(2) == 1 {
			tt.Set(p, true)
		}
	}
	return tt
}

func refCofactor(t TT, v int, val bool) TT {
	out, _ := NewTT(t.N)
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		q := p &^ (1 << uint(v))
		if val {
			q |= 1 << uint(v)
		}
		if t.Eval(q) {
			out.Set(p, true)
		}
	}
	return out
}

func refCofactorOnes(t TT, v int, val bool) int {
	n := 0
	want := uint64(0)
	if val {
		want = 1
	}
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		if (p>>uint(v))&1 == want && t.Eval(p) {
			n++
		}
	}
	return n
}

func refDependsOn(t TT, v int) bool {
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		if t.Eval(p) != t.Eval(p^(1<<uint(v))) {
			return true
		}
	}
	return false
}

func refTransform(t TT, perm []int, inv uint64, invOut bool, nOut int) TT {
	out, _ := NewTT(nOut)
	for p := uint64(0); p < 1<<uint(nOut); p++ {
		var q uint64
		for i, v := range perm {
			bit := (p >> uint(v)) & 1
			if inv&(1<<uint(i)) != 0 {
				bit ^= 1
			}
			q |= bit << uint(i)
		}
		val := t.Eval(q)
		if invOut {
			val = !val
		}
		if val {
			out.Set(p, true)
		}
	}
	return out
}

func TestCofactorKernelsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for n := 0; n <= MaxVars; n++ {
		for trial := 0; trial < 4; trial++ {
			tt := randTT(t, r, n)
			for v := 0; v < n; v++ {
				for _, val := range []bool{false, true} {
					got := tt.Cofactor(v, val)
					want := refCofactor(tt, v, val)
					if !got.Equal(want) {
						t.Fatalf("N=%d v=%d val=%v: Cofactor mismatch", n, v, val)
					}
					if co, ref := tt.CofactorOnes(v, val), refCofactorOnes(tt, v, val); co != ref {
						t.Fatalf("N=%d v=%d val=%v: CofactorOnes=%d want %d", n, v, val, co, ref)
					}
				}
				if got, want := tt.DependsOn(v), refDependsOn(tt, v); got != want {
					t.Fatalf("N=%d v=%d: DependsOn=%v want %v", n, v, got, want)
				}
			}
		}
	}
}

func TestTransformKernelMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for n := 0; n <= MaxVars; n++ {
		for trial := 0; trial < 6; trial++ {
			tt := randTT(t, r, n)
			perm := r.Perm(n)
			inv := r.Uint64() & (1<<uint(n) - 1)
			invOut := trial%2 == 1
			got := tt.Transform(perm, inv, invOut, n)
			want := refTransform(tt, perm, inv, invOut, n)
			if !got.Equal(want) {
				t.Fatalf("N=%d perm=%v inv=%b invOut=%v: Transform mismatch", n, perm, inv, invOut)
			}
		}
	}
}

// Transform must still take the general per-point path for width-changing
// (non-bijective) bindings.
func TestTransformWideningBinding(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 1; n <= 6; n++ {
		tt := randTT(t, r, n)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i + 1 // embed into n+1 variables, leaving var 0 unused
		}
		got := tt.Transform(perm, 0, false, n+1)
		want := refTransform(tt, perm, 0, false, n+1)
		if !got.Equal(want) {
			t.Fatalf("N=%d: widening Transform mismatch", n)
		}
	}
}

func TestSigVecMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for n := 0; n <= MaxVars; n++ {
		for trial := 0; trial < 4; trial++ {
			tt := randTT(t, r, n)
			sv := tt.SigVec()
			if sv.Ones != tt.Ones() {
				t.Fatalf("N=%d: SigVec.Ones=%d want %d", n, sv.Ones, tt.Ones())
			}
			for v := 0; v < n; v++ {
				if sv.C0[v] != refCofactorOnes(tt, v, false) || sv.C1[v] != refCofactorOnes(tt, v, true) {
					t.Fatalf("N=%d v=%d: SigVec cofactor counts wrong", n, v)
				}
			}
			// Complement is derived arithmetically; it must agree with the
			// vector computed from the complemented table.
			nc := tt.Not().SigVec()
			cc := sv.Complement()
			if nc.Ones != cc.Ones {
				t.Fatalf("N=%d: Complement.Ones=%d want %d", n, cc.Ones, nc.Ones)
			}
			for v := 0; v < n; v++ {
				if nc.C0[v] != cc.C0[v] || nc.C1[v] != cc.C1[v] {
					t.Fatalf("N=%d v=%d: Complement cofactor counts wrong", n, v)
				}
			}
		}
	}
}

// CanonKey must be invariant under everything Boolean matching abstracts
// over: input permutation, input phases and output phase.
func TestCanonKeyInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for n := 0; n <= 8; n++ {
		for trial := 0; trial < 6; trial++ {
			tt := randTT(t, r, n)
			key := tt.SigVec().CanonKey()
			if got := tt.Not().SigVec().CanonKey(); got != key {
				t.Fatalf("N=%d: CanonKey not output-phase-invariant", n)
			}
			perm := r.Perm(n)
			inv := r.Uint64() & (1<<uint(n) - 1)
			tr := tt.Transform(perm, inv, trial%2 == 1, n)
			if got := tr.SigVec().CanonKey(); got != key {
				t.Fatalf("N=%d perm=%v inv=%b: CanonKey not binding-invariant", n, perm, inv)
			}
		}
	}
}

func TestCofactorKernelsAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	tt := randTT(t, r, 8)
	if a := testing.AllocsPerRun(100, func() {
		tt.CofactorOnes(3, true)
		tt.DependsOn(5)
	}); a != 0 {
		t.Fatalf("CofactorOnes/DependsOn allocate %.1f times per run, want 0", a)
	}
}
