// Package truthtab provides truth tables for the modest support sizes of
// library cells and match clusters (up to 12 inputs, bit-packed) and the
// cofactor/unateness signatures used to prune Boolean matching, in the
// style of the CERES matcher the paper builds on.
package truthtab

import (
	"fmt"
	"math/bits"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

// MaxVars is the largest supported input count. 2^12 = 4096 minterms = 64
// words; the paper's libraries top out at 9 inputs.
const MaxVars = 12

// TT is a truth table over N variables: bit p of the packed Bits array is
// the function value at input point p (bit i of p = value of variable i).
type TT struct {
	N    int
	Bits []uint64
}

func words(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << uint(n-6)
}

// NewTT returns an all-zero table over n variables.
func NewTT(n int) (TT, error) {
	if n < 0 || n > MaxVars {
		return TT{}, fmt.Errorf("truthtab: %d variables out of range", n)
	}
	return TT{N: n, Bits: make([]uint64, words(n))}, nil
}

// lastMask masks the valid bits of the last word.
func (t TT) lastMask() uint64 {
	if t.N >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(t.N))) - 1
}

// FromFunc builds a truth table by evaluating f at every point.
func FromFunc(n int, f func(uint64) bool) (TT, error) {
	t, err := NewTT(n)
	if err != nil {
		return TT{}, err
	}
	for p := uint64(0); p < 1<<uint(n); p++ {
		if f(p) {
			t.Set(p, true)
		}
	}
	return t, nil
}

// FromCover builds a truth table from a cover.
func FromCover(c cube.Cover) (TT, error) {
	return FromFunc(c.N, c.Eval)
}

// FromExpr builds a truth table from a BFF function.
func FromExpr(f *bexpr.Function) (TT, error) {
	return FromFunc(f.NumVars(), f.Eval)
}

// Set assigns the value at an input point.
func (t TT) Set(p uint64, v bool) {
	if v {
		t.Bits[p>>6] |= 1 << (p & 63)
	} else {
		t.Bits[p>>6] &^= 1 << (p & 63)
	}
}

// Eval returns the value at an input point.
func (t TT) Eval(p uint64) bool { return t.Bits[p>>6]&(1<<(p&63)) != 0 }

// Ones returns the ON-set size.
func (t TT) Ones() int {
	n := 0
	for i, w := range t.Bits {
		if i == len(t.Bits)-1 {
			w &= t.lastMask()
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// Not returns the complemented function.
func (t TT) Not() TT {
	out, _ := NewTT(t.N)
	for i, w := range t.Bits {
		out.Bits[i] = ^w
	}
	out.Bits[len(out.Bits)-1] &= t.lastMask()
	return out
}

// Equal reports functional equality.
func (t TT) Equal(o TT) bool {
	if t.N != o.N {
		return false
	}
	for i := range t.Bits {
		a, b := t.Bits[i], o.Bits[i]
		if i == len(t.Bits)-1 {
			m := t.lastMask()
			a &= m
			b &= m
		}
		if a != b {
			return false
		}
	}
	return true
}

// Cofactor returns the cofactor with variable v fixed to val, kept over N
// variables (the result ignores variable v).
func (t TT) Cofactor(v int, val bool) TT {
	out, _ := NewTT(t.N)
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		q := p
		if val {
			q |= 1 << uint(v)
		} else {
			q &^= 1 << uint(v)
		}
		if t.Eval(q) {
			out.Set(p, true)
		}
	}
	return out
}

// DependsOn reports whether the function actually depends on variable v.
func (t TT) DependsOn(v int) bool {
	bit := uint64(1) << uint(v)
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		if p&bit != 0 {
			continue
		}
		if t.Eval(p) != t.Eval(p|bit) {
			return true
		}
	}
	return false
}

// Support returns the number of variables the function depends on.
func (t TT) Support() int {
	n := 0
	for v := 0; v < t.N; v++ {
		if t.DependsOn(v) {
			n++
		}
	}
	return n
}

// Transform applies an input binding: result(p) = t(q) where bit i of q is
// bit perm[i] of p, XORed with bit i of inv. perm must have length t.N and
// map cell inputs to result variables over nOut variables. When invOut is
// set the output is complemented.
func (t TT) Transform(perm []int, inv uint64, invOut bool, nOut int) TT {
	out, err := NewTT(nOut)
	if err != nil {
		panic(err)
	}
	for p := uint64(0); p < 1<<uint(nOut); p++ {
		var q uint64
		for i, v := range perm {
			bit := (p >> uint(v)) & 1
			if inv&(1<<uint(i)) != 0 {
				bit ^= 1
			}
			q |= bit << uint(i)
		}
		val := t.Eval(q)
		if invOut {
			val = !val
		}
		if val {
			out.Set(p, true)
		}
	}
	return out
}

// VarSignature is an input-inversion-invariant per-variable invariant used
// to prune matching: the ON-set sizes of the two cofactors, sorted.
type VarSignature struct {
	Lo, Hi int
}

// Signature computes the per-variable signatures of the function.
func (t TT) Signature() []VarSignature {
	out := make([]VarSignature, t.N)
	for v := 0; v < t.N; v++ {
		c0 := t.Cofactor(v, false).Ones() / 2 // each cofactor point counted twice over N vars
		c1 := t.Cofactor(v, true).Ones() / 2
		if c0 > c1 {
			c0, c1 = c1, c0
		}
		out[v] = VarSignature{Lo: c0, Hi: c1}
	}
	return out
}

// SymmetricPair reports whether variables u and v are interchangeable in
// the function (first-order NE symmetry).
func (t TT) SymmetricPair(u, v int) bool {
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		bu := (p >> uint(u)) & 1
		bv := (p >> uint(v)) & 1
		if bu == bv {
			continue
		}
		q := p ^ (1 << uint(u)) ^ (1 << uint(v))
		if t.Eval(p) != t.Eval(q) {
			return false
		}
	}
	return true
}

// String renders the table as hex words annotated with the input count.
func (t TT) String() string {
	if len(t.Bits) == 1 {
		return fmt.Sprintf("0x%x/%d", t.Bits[0]&t.lastMask(), t.N)
	}
	return fmt.Sprintf("%x/%d", t.Bits, t.N)
}
