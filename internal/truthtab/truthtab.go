// Package truthtab provides truth tables for the modest support sizes of
// library cells and match clusters (up to 12 inputs, bit-packed) and the
// cofactor/unateness signatures used to prune Boolean matching, in the
// style of the CERES matcher the paper builds on.
package truthtab

import (
	"fmt"
	"math/bits"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

// MaxVars is the largest supported input count. 2^12 = 4096 minterms = 64
// words; the paper's libraries top out at 9 inputs.
const MaxVars = 12

// TT is a truth table over N variables: bit p of the packed Bits array is
// the function value at input point p (bit i of p = value of variable i).
type TT struct {
	N    int
	Bits []uint64
}

func words(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << uint(n-6)
}

// NewTT returns an all-zero table over n variables.
func NewTT(n int) (TT, error) {
	if n < 0 || n > MaxVars {
		return TT{}, fmt.Errorf("truthtab: %d variables out of range", n)
	}
	return TT{N: n, Bits: make([]uint64, words(n))}, nil
}

// lastMask masks the valid bits of the last word.
func (t TT) lastMask() uint64 {
	if t.N >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << (1 << uint(t.N))) - 1
}

// FromFunc builds a truth table by evaluating f at every point.
func FromFunc(n int, f func(uint64) bool) (TT, error) {
	t, err := NewTT(n)
	if err != nil {
		return TT{}, err
	}
	for p := uint64(0); p < 1<<uint(n); p++ {
		if f(p) {
			t.Set(p, true)
		}
	}
	return t, nil
}

// FromCover builds a truth table from a cover.
func FromCover(c cube.Cover) (TT, error) {
	return FromFunc(c.N, c.Eval)
}

// FromExpr builds a truth table from a BFF function.
func FromExpr(f *bexpr.Function) (TT, error) {
	return FromFunc(f.NumVars(), f.Eval)
}

// reserve resizes t to n variables reusing the Bits backing array when it
// is large enough, zeroing the live words.
func (t *TT) reserve(n int) {
	w := words(n)
	if cap(t.Bits) < w {
		t.Bits = make([]uint64, w)
	} else {
		t.Bits = t.Bits[:w]
		clear(t.Bits)
	}
	t.N = n
}

// FromExprInto is FromExpr into caller-owned storage: t is resized over
// the function's variables, reusing its Bits array when capacity allows,
// so steady-state construction allocates nothing.
func FromExprInto(f *bexpr.Function, t *TT) error {
	n := f.NumVars()
	if n < 0 || n > MaxVars {
		return fmt.Errorf("truthtab: %d variables out of range", n)
	}
	t.reserve(n)
	for p := uint64(0); p < 1<<uint(n); p++ {
		if f.Eval(p) {
			t.Set(p, true)
		}
	}
	return nil
}

// Set assigns the value at an input point.
func (t TT) Set(p uint64, v bool) {
	if v {
		t.Bits[p>>6] |= 1 << (p & 63)
	} else {
		t.Bits[p>>6] &^= 1 << (p & 63)
	}
}

// Eval returns the value at an input point.
func (t TT) Eval(p uint64) bool { return t.Bits[p>>6]&(1<<(p&63)) != 0 }

// Ones returns the ON-set size.
func (t TT) Ones() int {
	n := 0
	for i, w := range t.Bits {
		if i == len(t.Bits)-1 {
			w &= t.lastMask()
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// Not returns the complemented function.
func (t TT) Not() TT {
	out, _ := NewTT(t.N)
	for i, w := range t.Bits {
		out.Bits[i] = ^w
	}
	out.Bits[len(out.Bits)-1] &= t.lastMask()
	return out
}

// NotInto writes the complemented function into caller-owned storage,
// reusing out's Bits array when capacity allows.
func (t TT) NotInto(out *TT) {
	w := len(t.Bits)
	if cap(out.Bits) < w {
		out.Bits = make([]uint64, w)
	} else {
		out.Bits = out.Bits[:w]
	}
	out.N = t.N
	for i, x := range t.Bits {
		out.Bits[i] = ^x
	}
	out.Bits[w-1] &= t.lastMask()
}

// Equal reports functional equality.
func (t TT) Equal(o TT) bool {
	if t.N != o.N {
		return false
	}
	for i := range t.Bits {
		a, b := t.Bits[i], o.Bits[i]
		if i == len(t.Bits)-1 {
			m := t.lastMask()
			a &= m
			b &= m
		}
		if a != b {
			return false
		}
	}
	return true
}

// loMask[v] marks, within one 64-point word, the points where variable v
// is 0. Variables 6 and up select whole words instead of bits, so the
// word-parallel kernels below split every operation into an in-word case
// (v < 6, mask arithmetic) and a word-stride case (v >= 6, block moves).
var loMask = [6]uint64{
	0x5555555555555555,
	0x3333333333333333,
	0x0F0F0F0F0F0F0F0F,
	0x00FF00FF00FF00FF,
	0x0000FFFF0000FFFF,
	0x00000000FFFFFFFF,
}

func (t TT) clone() TT {
	out := TT{N: t.N, Bits: make([]uint64, len(t.Bits))}
	copy(out.Bits, t.Bits)
	return out
}

// Cofactor returns the cofactor with variable v fixed to val, kept over N
// variables (the result ignores variable v).
func (t TT) Cofactor(v int, val bool) TT {
	out, _ := NewTT(t.N)
	if v < 6 {
		s := uint(1) << uint(v)
		if val {
			m := ^loMask[v]
			for i, w := range t.Bits {
				h := w & m
				out.Bits[i] = h | h>>s
			}
		} else {
			m := loMask[v]
			for i, w := range t.Bits {
				h := w & m
				out.Bits[i] = h | h<<s
			}
		}
	} else {
		stride := 1 << uint(v-6)
		for i := range t.Bits {
			src := i &^ stride
			if val {
				src |= stride
			}
			out.Bits[i] = t.Bits[src]
		}
	}
	out.Bits[len(out.Bits)-1] &= t.lastMask()
	return out
}

// CofactorOnes counts the ON-set points with variable v fixed to val — the
// cofactor's ON-set size over the 2^(N-1) points of the remaining
// variables — without materialising the cofactor.
func (t TT) CofactorOnes(v int, val bool) int {
	last := len(t.Bits) - 1
	n := 0
	if v < 6 {
		m := loMask[v]
		if val {
			m = ^m
		}
		for i, w := range t.Bits {
			if i == last {
				w &= t.lastMask()
			}
			n += bits.OnesCount64(w & m)
		}
		return n
	}
	want := 0
	if val {
		want = 1
	}
	for i, w := range t.Bits {
		if (i>>uint(v-6))&1 != want {
			continue
		}
		n += bits.OnesCount64(w)
	}
	return n
}

// DependsOn reports whether the function actually depends on variable v.
func (t TT) DependsOn(v int) bool {
	last := len(t.Bits) - 1
	if v < 6 {
		s := uint(1) << uint(v)
		m := loMask[v]
		for i, w := range t.Bits {
			if i == last {
				w &= t.lastMask()
			}
			if (w^(w>>s))&m != 0 {
				return true
			}
		}
		return false
	}
	stride := 1 << uint(v-6)
	for i, w := range t.Bits {
		if i&stride != 0 {
			continue
		}
		if w != t.Bits[i|stride] {
			return true
		}
	}
	return false
}

// Support returns the number of variables the function depends on.
func (t TT) Support() int {
	n := 0
	for v := 0; v < t.N; v++ {
		if t.DependsOn(v) {
			n++
		}
	}
	return n
}

// Transform applies an input binding: result(p) = t(q) where bit i of q is
// bit perm[i] of p, XORed with bit i of inv. perm must have length t.N and
// map cell inputs to result variables over nOut variables. When invOut is
// set the output is complemented.
//
// Bijective same-width bindings — the only kind Boolean matching produces —
// run word-parallel: input inversions are in-word/word-pair exchanges and
// the permutation decomposes into variable swaps, so the whole transform is
// O(words) mask arithmetic instead of a per-point evaluation loop.
func (t TT) Transform(perm []int, inv uint64, invOut bool, nOut int) TT {
	if nOut == t.N && isPermutation(perm, t.N) {
		out := t.clone()
		for i := 0; i < t.N; i++ {
			if inv&(1<<uint(i)) != 0 {
				out.flipVar(i)
			}
		}
		out.applyPerm(perm)
		if invOut {
			for i := range out.Bits {
				out.Bits[i] = ^out.Bits[i]
			}
		}
		out.Bits[len(out.Bits)-1] &= out.lastMask()
		return out
	}
	// General fallback (width change or non-bijective binding): the
	// per-point definition.
	out, err := NewTT(nOut)
	if err != nil {
		panic(err)
	}
	for p := uint64(0); p < 1<<uint(nOut); p++ {
		var q uint64
		for i, v := range perm {
			bit := (p >> uint(v)) & 1
			if inv&(1<<uint(i)) != 0 {
				bit ^= 1
			}
			q |= bit << uint(i)
		}
		val := t.Eval(q)
		if invOut {
			val = !val
		}
		if val {
			out.Set(p, true)
		}
	}
	return out
}

// TransformInto is Transform into caller-owned storage: on the bijective
// word-parallel path out's Bits array is reused when capacity allows, so
// steady-state transforms allocate nothing. The general fallback (width
// change or non-bijective binding) delegates to Transform.
func (t TT) TransformInto(perm []int, inv uint64, invOut bool, nOut int, out *TT) {
	if nOut == t.N && isPermutation(perm, t.N) {
		w := len(t.Bits)
		if cap(out.Bits) < w {
			out.Bits = make([]uint64, w)
		} else {
			out.Bits = out.Bits[:w]
		}
		out.N = t.N
		copy(out.Bits, t.Bits)
		for i := 0; i < t.N; i++ {
			if inv&(1<<uint(i)) != 0 {
				out.flipVar(i)
			}
		}
		out.applyPerm(perm)
		if invOut {
			for i := range out.Bits {
				out.Bits[i] = ^out.Bits[i]
			}
		}
		out.Bits[len(out.Bits)-1] &= out.lastMask()
		return
	}
	*out = t.Transform(perm, inv, invOut, nOut)
}

func isPermutation(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	var seen uint32
	for _, v := range perm {
		if v < 0 || v >= n || seen&(1<<uint(v)) != 0 {
			return false
		}
		seen |= 1 << uint(v)
	}
	return true
}

// flipVar complements variable v in place: f'(p) = f(p ^ 1<<v).
func (t TT) flipVar(v int) {
	if v < 6 {
		s := uint(1) << uint(v)
		m := loMask[v]
		for i, w := range t.Bits {
			t.Bits[i] = (w&m)<<s | (w>>s)&m
		}
		return
	}
	stride := 1 << uint(v-6)
	for i := range t.Bits {
		if i&stride == 0 {
			j := i | stride
			t.Bits[i], t.Bits[j] = t.Bits[j], t.Bits[i]
		}
	}
}

// applyPerm rearranges variables in place so that the result reads its
// bit-perm[i] input where the old table read variable i: out(p) = old(q)
// with q_i = bit perm[i] of p. perm must be a permutation of 0..N-1. The
// permutation is decomposed into at most N-1 variable swaps.
func (t TT) applyPerm(perm []int) {
	n := t.N
	var posBuf, atBuf [MaxVars]int
	pos, at := posBuf[:n], atBuf[:n]
	for i := 0; i < n; i++ {
		pos[i], at[i] = i, i
	}
	for i := 0; i < n; i++ {
		cur, tgt := pos[i], perm[i]
		if cur == tgt {
			continue
		}
		t.swapVars(cur, tgt)
		j := at[tgt]
		at[cur], at[tgt] = j, i
		pos[i], pos[j] = tgt, cur
	}
}

// swapVars exchanges variables u and v in place: f'(p) = f(p with bits u
// and v swapped).
func (t TT) swapVars(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	switch {
	case v < 6:
		// Both in-word: delta-swap the (u=1, v=0) bits with their (u=0,
		// v=1) partners, which sit a fixed distance d up the word.
		d := uint(1)<<uint(v) - uint(1)<<uint(u)
		a := ^loMask[u] & loMask[v]
		for i, w := range t.Bits {
			x := (w >> d) & a
			y := (w & a) << d
			t.Bits[i] = w&^(a|a<<d) | x | y
		}
	case u >= 6:
		// Both word-indexed: swap whole words across the two index bits.
		bu, bv := 1<<uint(u-6), 1<<uint(v-6)
		for i := range t.Bits {
			if i&bu != 0 && i&bv == 0 {
				j := i ^ bu ^ bv
				t.Bits[i], t.Bits[j] = t.Bits[j], t.Bits[i]
			}
		}
	default:
		// Mixed: u lives in-word, v selects word pairs. Exchange the u=1
		// half of each v=0 word with the u=0 half of its v=1 partner.
		s := uint(1) << uint(u)
		m0 := loMask[u]
		bv := 1 << uint(v-6)
		for i := range t.Bits {
			if i&bv != 0 {
				continue
			}
			lo, hi := t.Bits[i], t.Bits[i|bv]
			t.Bits[i] = lo&m0 | (hi&m0)<<s
			t.Bits[i|bv] = hi&^m0 | (lo&^m0)>>s
		}
	}
}

// VarSignature is an input-inversion-invariant per-variable invariant used
// to prune matching: the ON-set sizes of the two cofactors, sorted.
type VarSignature struct {
	Lo, Hi int
}

// Signature computes the per-variable signatures of the function.
func (t TT) Signature() []VarSignature {
	sv := t.SigVec()
	out := make([]VarSignature, t.N)
	for v := range out {
		out[v] = sv.Var(v)
	}
	return out
}

// SigVector carries the ON-set size and the per-variable cofactor ON-set
// counts of a function — every quantity the Boolean matcher's pruning
// consults — computed once with the word-parallel kernels so it can be
// memoized per cell and shared across phases, cells and bindings.
type SigVector struct {
	N    int
	Ones int
	// C0[v] and C1[v] are the ON-set sizes of the v=0 and v=1 cofactors,
	// each counted over the 2^(N-1) points of the remaining variables.
	C0, C1 []int
}

// SigVec computes the signature vector of the function.
func (t TT) SigVec() SigVector {
	s := SigVector{N: t.N, Ones: t.Ones()}
	s.C0 = make([]int, t.N)
	s.C1 = make([]int, t.N)
	for v := 0; v < t.N; v++ {
		c0 := t.CofactorOnes(v, false)
		s.C0[v] = c0
		s.C1[v] = s.Ones - c0
	}
	return s
}

// SigVecInto is SigVec into caller-owned storage: s's C0/C1 slices are
// reused when capacity allows, so steady-state computation allocates
// nothing.
func (t TT) SigVecInto(s *SigVector) {
	s.N = t.N
	s.Ones = t.Ones()
	s.C0 = growInts(s.C0, t.N)
	s.C1 = growInts(s.C1, t.N)
	for v := 0; v < t.N; v++ {
		c0 := t.CofactorOnes(v, false)
		s.C0[v] = c0
		s.C1[v] = s.Ones - c0
	}
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Complement returns the signature vector of the complemented function
// without touching a truth table.
func (s SigVector) Complement() SigVector {
	out := SigVector{
		N:    s.N,
		Ones: 1<<uint(s.N) - s.Ones,
		C0:   make([]int, s.N),
		C1:   make([]int, s.N),
	}
	if s.N > 0 {
		half := 1 << uint(s.N-1)
		for v := range s.C0 {
			out.C0[v] = half - s.C0[v]
			out.C1[v] = half - s.C1[v]
		}
	}
	return out
}

// ComplementInto is Complement into caller-owned storage, reusing out's
// C0/C1 slices when capacity allows.
func (s SigVector) ComplementInto(out *SigVector) {
	out.N = s.N
	out.Ones = 1<<uint(s.N) - s.Ones
	out.C0 = growInts(out.C0, s.N)
	out.C1 = growInts(out.C1, s.N)
	if s.N > 0 {
		half := 1 << uint(s.N-1)
		for v := range s.C0 {
			out.C0[v] = half - s.C0[v]
			out.C1[v] = half - s.C1[v]
		}
	}
}

// Var returns the input-inversion-invariant signature of one variable.
func (s SigVector) Var(v int) VarSignature {
	c0, c1 := s.C0[v], s.C1[v]
	if c0 > c1 {
		c0, c1 = c1, c0
	}
	return VarSignature{Lo: c0, Hi: c1}
}

// sortSigs orders signatures by (Lo, Hi). Insertion sort on a stack-backed
// slice of at most MaxVars elements: no sort.Slice interface boxing or
// reflection-based swapper on the hot path.
func sortSigs(sigs []VarSignature) {
	for i := 1; i < len(sigs); i++ {
		x := sigs[i]
		j := i - 1
		for j >= 0 && (sigs[j].Lo > x.Lo || (sigs[j].Lo == x.Lo && sigs[j].Hi > x.Hi)) {
			sigs[j+1] = sigs[j]
			j--
		}
		sigs[j+1] = x
	}
}

// appendSigsKey appends the serialised (ON-set size, sorted per-variable
// signatures) key to dst; all values fit in 16 bits for N <= MaxVars.
// sigs is sorted in place.
func appendSigsKey(dst []byte, ones int, sigs []VarSignature) []byte {
	sortSigs(sigs)
	dst = append(dst, byte(ones>>8), byte(ones))
	for _, sg := range sigs {
		dst = append(dst, byte(sg.Lo>>8), byte(sg.Lo), byte(sg.Hi>>8), byte(sg.Hi))
	}
	return dst
}

// sigsKey serialises (ON-set size, sorted per-variable signatures) as a
// compact byte string; sigs is sorted in place.
func sigsKey(ones int, sigs []VarSignature) string {
	var buf [2 + 4*MaxVars]byte
	return string(appendSigsKey(buf[:0], ones, sigs))
}

// CanonKey returns the match-index key of the function: the ON-set size
// and signature multiset, folded so that a function and its complement
// share one key. Two functions equal up to input permutation, input
// phases and output phase always agree on CanonKey, and two functions
// with different keys can never match — the key is a necessary condition,
// so an index bucketed by it returns a superset of the true matches.
// The complement's key is derived arithmetically without materialising
// the complement signature vector; the whole computation allocates only
// the two candidate key strings.
func (s SigVector) CanonKey() string {
	var buf [2 + 4*MaxVars]byte
	return string(s.AppendCanonKey(buf[:0]))
}

// AppendCanonKey appends the CanonKey bytes to dst and returns the
// extended slice. Byte-for-byte identical to CanonKey without the string
// allocations: the mapper probes the match index once per cut with a
// reusable buffer, and Library.CandidatesKey converts the bytes in place.
func (s SigVector) AppendCanonKey(dst []byte) []byte {
	var rawBuf, cplBuf [2 + 4*MaxVars]byte
	var sigBuf [MaxVars]VarSignature
	sigs := sigBuf[:s.N]
	for v := range sigs {
		sigs[v] = s.Var(v)
	}
	a := appendSigsKey(rawBuf[:0], s.Ones, sigs)
	half := 0
	if s.N > 0 {
		half = 1 << uint(s.N-1)
	}
	for v := range sigs {
		c0, c1 := half-s.C0[v], half-s.C1[v]
		if c0 > c1 {
			c0, c1 = c1, c0
		}
		sigs[v] = VarSignature{Lo: c0, Hi: c1}
	}
	b := appendSigsKey(cplBuf[:0], 1<<uint(s.N)-s.Ones, sigs)
	if string(b) < string(a) {
		return append(dst, b...)
	}
	return append(dst, a...)
}

// SymmetricPair reports whether variables u and v are interchangeable in
// the function (first-order NE symmetry).
func (t TT) SymmetricPair(u, v int) bool {
	for p := uint64(0); p < 1<<uint(t.N); p++ {
		bu := (p >> uint(u)) & 1
		bv := (p >> uint(v)) & 1
		if bu == bv {
			continue
		}
		q := p ^ (1 << uint(u)) ^ (1 << uint(v))
		if t.Eval(p) != t.Eval(q) {
			return false
		}
	}
	return true
}

// String renders the table as hex words annotated with the input count.
func (t TT) String() string {
	if len(t.Bits) == 1 {
		return fmt.Sprintf("0x%x/%d", t.Bits[0]&t.lastMask(), t.N)
	}
	return fmt.Sprintf("%x/%d", t.Bits, t.N)
}
