package truthtab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gfmap/internal/bexpr"
	"gfmap/internal/cube"
)

func tt(t *testing.T, expr string) TT {
	t.Helper()
	f := bexpr.MustParse(expr)
	out, err := FromExpr(f)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFromCoverAndExprAgree(t *testing.T) {
	names := []string{"a", "b", "c"}
	cov := cube.MustParseCover("ab + a'c", names)
	fromCov, err := FromCover(cov)
	if err != nil {
		t.Fatal(err)
	}
	fromExpr := tt(t, "a*b + a'*c")
	if !fromCov.Equal(fromExpr) {
		t.Errorf("cover TT %v != expr TT %v", fromCov, fromExpr)
	}
}

func TestOnesAndNot(t *testing.T) {
	and2 := tt(t, "a*b")
	if and2.Ones() != 1 {
		t.Errorf("AND2 ones = %d, want 1", and2.Ones())
	}
	if and2.Not().Ones() != 3 {
		t.Errorf("NAND2 ones = %d, want 3", and2.Not().Ones())
	}
	if !and2.Not().Not().Equal(and2) {
		t.Error("double complement must be identity")
	}
}

func TestDependsOnSupport(t *testing.T) {
	f := bexpr.MustParse("a*b + a'*b") // = b, does not depend on a
	g, err := FromExpr(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.DependsOn(0) {
		t.Error("function should not depend on a")
	}
	if !g.DependsOn(1) {
		t.Error("function should depend on b")
	}
	if g.Support() != 1 {
		t.Errorf("support = %d, want 1", g.Support())
	}
}

func TestTransform(t *testing.T) {
	// cell = a*b' over (a,b); bind a->var1, b->var0 inverted: result = x1 * x0.
	cell := tt(t, "a*b'")
	got := cell.Transform([]int{1, 0}, 1<<1, false, 2)
	want := tt(t, "a*b") // over (a,b) = (var0, var1)
	if !got.Equal(want) {
		t.Errorf("Transform = %v, want %v", got, want)
	}
	// Output inversion.
	gotInv := cell.Transform([]int{0, 1}, 0, true, 2)
	wantInv := tt(t, "(a*b')'")
	if !gotInv.Equal(wantInv) {
		t.Errorf("Transform invOut = %v, want %v", gotInv, wantInv)
	}
}

func TestSignatureInvariance(t *testing.T) {
	f := tt(t, "a*b + c")
	g := tt(t, "a'*b + c") // input inversion of a
	fs, gs := f.Signature(), g.Signature()
	for v := range fs {
		if fs[v] != gs[v] {
			t.Errorf("signature of var %d not inversion-invariant: %v vs %v", v, fs[v], gs[v])
		}
	}
}

func TestSymmetricPair(t *testing.T) {
	f := tt(t, "a*b + c")
	if !f.SymmetricPair(0, 1) {
		t.Error("a,b should be symmetric in ab + c")
	}
	if f.SymmetricPair(0, 2) {
		t.Error("a,c should not be symmetric in ab + c")
	}
}

func TestCofactor(t *testing.T) {
	f := tt(t, "a*b + a'*c")
	c1 := f.Cofactor(0, true) // = b, still over 3 variables
	want, err := FromFunc(3, func(p uint64) bool { return p&0b010 != 0 })
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(want) {
		t.Errorf("cofactor a=1: %v, want b (=%v)", c1, want)
	}
}

// TestTransformComposition: applying two transforms sequentially equals
// applying their composition.
func TestTransformComposition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(4))}
	prop := func(bits uint16, inv1, inv2 uint8) bool {
		n := 3
		f, err := FromFunc(n, func(p uint64) bool { return bits&(1<<p) != 0 })
		if err != nil {
			return false
		}
		id := []int{0, 1, 2}
		g := f.Transform(id, uint64(inv1)&7, false, n)
		h := g.Transform(id, uint64(inv2)&7, false, n)
		direct := f.Transform(id, (uint64(inv1)^uint64(inv2))&7, false, n)
		return h.Equal(direct)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestNotInvolution: complement is an involution and flips Ones.
func TestNotInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	prop := func(bits uint16) bool {
		f, err := FromFunc(4, func(p uint64) bool { return bits&(1<<p) != 0 })
		if err != nil {
			return false
		}
		return f.Not().Not().Equal(f) && f.Ones()+f.Not().Ones() == 16
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
